//! The wire-frame envelope of the tcom network protocol.
//!
//! A frame is the unit of transmission between `tcom-client` and
//! `tcom-server`:
//!
//! ```text
//! [len: u32 LE][version: u8][kind: u8][payload: len-2 bytes]
//! ```
//!
//! `len` counts the *body* (version byte, kind byte and payload), so a
//! reader needs exactly `4 + len` bytes for one complete frame. Decoding
//! is strict and incremental: [`Frame::decode`] distinguishes *incomplete*
//! input (more bytes must arrive — never an error on a healthy stream)
//! from *malformed* input (wrong protocol version, unknown frame kind,
//! oversized or undersized length — the connection must be dropped).
//! Payload contents are opaque at this layer; the typed payload codecs
//! live in the client library, built on [`crate::codec`].

use crate::error::{Error, Result};

/// The wire-protocol version this build speaks. A frame carrying any other
/// version is rejected before its payload is looked at, so incompatible
/// clients fail fast with a clean error instead of a payload mis-parse.
pub const PROTOCOL_VERSION: u8 = 1;

/// Upper bound on one frame's body length. Generous enough for any result
/// set the engine produces in practice, small enough that a torn or
/// hostile length prefix cannot make a reader allocate gigabytes.
pub const MAX_FRAME_LEN: usize = 32 << 20;

/// Frame type tags. The numeric values are wire-stable: new kinds may be
/// appended, existing ones never renumbered.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FrameKind {
    /// Client → server: connection handshake.
    Hello = 1,
    /// Server → client: handshake accepted (session id, clock).
    HelloOk = 2,
    /// Client → server: execute one TQL statement.
    Query = 3,
    /// Client → server: parse + plan a statement into the session cache.
    Prepare = 4,
    /// Server → client: statement handle from [`FrameKind::Prepare`].
    Prepared = 5,
    /// Client → server: run a cached statement handle.
    Execute = 6,
    /// Server → client: a statement's full result.
    Rows = 7,
    /// Server → client: transaction-control / buffered-DML acknowledgement.
    Ack = 8,
    /// Server → client: request failed (session stays usable).
    Error = 9,
    /// Client → server: liveness probe.
    Ping = 10,
    /// Server → client: probe reply carrying the published clock.
    Pong = 11,
    /// Client → server: open an explicit transaction on the session.
    Begin = 12,
    /// Client → server: commit the session's open transaction.
    Commit = 13,
    /// Client → server: abandon the session's open transaction.
    Rollback = 14,
    /// Replica → leader: start streaming WAL frames from a resume point.
    ReplSubscribe = 15,
    /// Leader → replica: one chunk of durable WAL bytes plus lag markers.
    ReplFrame = 16,
    /// Replica → leader: progress acknowledgement (applied LSN).
    ReplAck = 17,
}

impl FrameKind {
    /// Decodes a wire tag.
    pub fn from_u8(v: u8) -> Option<FrameKind> {
        Some(match v {
            1 => FrameKind::Hello,
            2 => FrameKind::HelloOk,
            3 => FrameKind::Query,
            4 => FrameKind::Prepare,
            5 => FrameKind::Prepared,
            6 => FrameKind::Execute,
            7 => FrameKind::Rows,
            8 => FrameKind::Ack,
            9 => FrameKind::Error,
            10 => FrameKind::Ping,
            11 => FrameKind::Pong,
            12 => FrameKind::Begin,
            13 => FrameKind::Commit,
            14 => FrameKind::Rollback,
            15 => FrameKind::ReplSubscribe,
            16 => FrameKind::ReplFrame,
            17 => FrameKind::ReplAck,
            _ => return None,
        })
    }

    /// Stable lower-case name, used as the metrics label for
    /// `server.frames`.
    pub fn name(self) -> &'static str {
        match self {
            FrameKind::Hello => "hello",
            FrameKind::HelloOk => "hello_ok",
            FrameKind::Query => "query",
            FrameKind::Prepare => "prepare",
            FrameKind::Prepared => "prepared",
            FrameKind::Execute => "execute",
            FrameKind::Rows => "rows",
            FrameKind::Ack => "ack",
            FrameKind::Error => "error",
            FrameKind::Ping => "ping",
            FrameKind::Pong => "pong",
            FrameKind::Begin => "begin",
            FrameKind::Commit => "commit",
            FrameKind::Rollback => "rollback",
            FrameKind::ReplSubscribe => "repl_subscribe",
            FrameKind::ReplFrame => "repl_frame",
            FrameKind::ReplAck => "repl_ack",
        }
    }
}

/// One decoded frame: its kind and its (still encoded) payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// The frame type.
    pub kind: FrameKind,
    /// The opaque payload bytes (typed codecs live one layer up).
    pub payload: Vec<u8>,
}

impl Frame {
    /// A frame with an empty payload.
    pub fn empty(kind: FrameKind) -> Frame {
        Frame {
            kind,
            payload: Vec::new(),
        }
    }

    /// A frame with the given payload.
    pub fn new(kind: FrameKind, payload: Vec<u8>) -> Frame {
        Frame { kind, payload }
    }

    /// Encodes the frame for the wire: length prefix, version, kind,
    /// payload.
    pub fn encode(&self) -> Vec<u8> {
        let body_len = 2 + self.payload.len();
        debug_assert!(body_len <= MAX_FRAME_LEN, "frame exceeds MAX_FRAME_LEN");
        let mut out = Vec::with_capacity(4 + body_len);
        out.extend_from_slice(&(body_len as u32).to_le_bytes());
        out.push(PROTOCOL_VERSION);
        out.push(self.kind as u8);
        out.extend_from_slice(&self.payload);
        out
    }

    /// Tries to decode one frame from the front of `buf`.
    ///
    /// * `Ok(None)` — `buf` holds a (possibly empty) *prefix* of a valid
    ///   frame; read more bytes and call again. Every truncation point of
    ///   a well-formed frame lands here, never in a panic or a bogus
    ///   frame.
    /// * `Ok(Some((frame, consumed)))` — one complete frame; the caller
    ///   drains `consumed` bytes.
    /// * `Err(_)` — the stream is malformed (unknown protocol version,
    ///   unknown kind, length out of bounds); the connection is beyond
    ///   recovery and must be closed.
    pub fn decode(buf: &[u8]) -> Result<Option<(Frame, usize)>> {
        if buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
        if len < 2 {
            return Err(Error::corruption(format!(
                "frame body length {len} below minimum of 2"
            )));
        }
        if len > MAX_FRAME_LEN {
            return Err(Error::corruption(format!(
                "frame body length {len} exceeds maximum {MAX_FRAME_LEN}"
            )));
        }
        if buf.len() < 4 + len {
            return Ok(None);
        }
        let version = buf[4];
        if version != PROTOCOL_VERSION {
            return Err(Error::unsupported(format!(
                "unknown protocol version {version} (this build speaks {PROTOCOL_VERSION})"
            )));
        }
        let kind = FrameKind::from_u8(buf[5])
            .ok_or_else(|| Error::corruption(format!("unknown frame kind {}", buf[5])))?;
        Ok(Some((
            Frame {
                kind,
                payload: buf[6..4 + len].to_vec(),
            },
            4 + len,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_kinds() {
        for k in 1u8..=17 {
            let kind = FrameKind::from_u8(k).unwrap();
            assert_eq!(kind as u8, k);
            let f = Frame::new(kind, vec![7, 8, 9]);
            let bytes = f.encode();
            let (g, used) = Frame::decode(&bytes).unwrap().unwrap();
            assert_eq!(g, f);
            assert_eq!(used, bytes.len());
        }
        assert_eq!(FrameKind::from_u8(0), None);
        assert_eq!(FrameKind::from_u8(18), None);
    }

    #[test]
    fn empty_payload_and_pipelined_frames() {
        let a = Frame::empty(FrameKind::Ping).encode();
        let b = Frame::new(FrameKind::Query, b"SELECT 1".to_vec()).encode();
        let mut stream = a.clone();
        stream.extend_from_slice(&b);
        let (f1, n1) = Frame::decode(&stream).unwrap().unwrap();
        assert_eq!(f1.kind, FrameKind::Ping);
        assert!(f1.payload.is_empty());
        let (f2, n2) = Frame::decode(&stream[n1..]).unwrap().unwrap();
        assert_eq!(f2.kind, FrameKind::Query);
        assert_eq!(n1 + n2, stream.len());
    }

    #[test]
    fn truncation_is_incomplete_not_error() {
        let bytes = Frame::new(FrameKind::Rows, vec![1; 100]).encode();
        for cut in 0..bytes.len() {
            assert!(
                matches!(Frame::decode(&bytes[..cut]), Ok(None)),
                "cut at {cut} must read as incomplete"
            );
        }
    }

    #[test]
    fn malformed_frames_rejected() {
        // Wrong protocol version.
        let mut bytes = Frame::empty(FrameKind::Ping).encode();
        bytes[4] = PROTOCOL_VERSION + 1;
        assert!(matches!(Frame::decode(&bytes), Err(Error::Unsupported(_))));
        // Unknown kind.
        let mut bytes = Frame::empty(FrameKind::Ping).encode();
        bytes[5] = 0xEE;
        assert!(matches!(Frame::decode(&bytes), Err(Error::Corruption(_))));
        // Oversized length prefix: rejected before any allocation.
        let mut bytes = vec![0u8; 8];
        bytes[..4].copy_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        assert!(matches!(Frame::decode(&bytes), Err(Error::Corruption(_))));
        // Undersized length prefix (no room for version + kind).
        let bytes = 1u32.to_le_bytes().to_vec();
        assert!(matches!(Frame::decode(&bytes), Err(Error::Corruption(_))));
    }
}
