//! # tcom-kernel
//!
//! Foundation types shared by every crate of the `tcom` temporal
//! complex-object database engine: the temporal domain ([`time`]), the
//! value model ([`value`]), identifier newtypes ([`ids`]), the engine-wide
//! error type ([`error`]) and the binary record codec ([`codec`]).
//!
//! Nothing in this crate performs I/O; it is pure data-model code with
//! exhaustive unit and property tests.

#![warn(missing_docs)]

pub mod codec;
pub mod error;
pub mod frame;
pub mod ids;
pub mod time;
pub mod value;

pub use error::{Error, Result};
pub use ids::{
    AtomId, AtomNo, AtomTypeId, AttrId, Lsn, MoleculeTypeId, PageId, RecordId, SlotId, TxnId,
};
pub use time::{BitemporalStamp, Interval, IntervalRelation, TemporalElement, TimePoint};
pub use value::{DataType, Tuple, Value};
