//! Compact binary codec for on-page records and WAL entries.
//!
//! Hand-rolled rather than pulled from a serialization crate because the
//! record format *is* part of the storage design: versions, deltas and log
//! records must be byte-stable across releases and cheap to decode
//! mid-page. The format is:
//!
//! * integers: LEB128 varints (zig-zag for signed),
//! * strings/bytes: length-prefixed,
//! * values: 1 tag byte + payload,
//! * structured items (tuples, stamps): concatenation with a leading arity.
//!
//! Everything round-trips; decoding is strict and never panics on corrupt
//! input (returns [`Error::Corruption`]).

use crate::error::{Error, Result};
use crate::ids::{AtomId, RecordId};
use crate::time::{Interval, TimePoint};
use crate::value::{Tuple, Value};

/// Append-only encoder over a byte vector.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Fresh encoder.
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// Encoder reusing an existing buffer's capacity.
    pub fn with_capacity(cap: usize) -> Encoder {
        Encoder {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Finishes and returns the bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes a LEB128 unsigned varint.
    pub fn put_u64(&mut self, mut v: u64) {
        loop {
            let b = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(b);
                return;
            }
            self.buf.push(b | 0x80);
        }
    }

    /// Writes a zig-zag signed varint.
    pub fn put_i64(&mut self, v: i64) {
        self.put_u64(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Writes one raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian f64.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes length-prefixed bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Writes a time point (varint; `FOREVER` stays `u64::MAX`).
    pub fn put_time(&mut self, t: TimePoint) {
        self.put_u64(t.0);
    }

    /// Writes an interval as (start, end).
    pub fn put_interval(&mut self, iv: &Interval) {
        self.put_time(iv.start());
        self.put_time(iv.end());
    }

    /// Writes an atom id (packed form).
    pub fn put_atom_id(&mut self, a: AtomId) {
        self.put_u64(a.pack());
    }

    /// Writes a record id (packed form).
    pub fn put_record_id(&mut self, r: RecordId) {
        self.put_u64(r.pack());
    }

    /// Writes one tagged value.
    pub fn put_value(&mut self, v: &Value) {
        match v {
            Value::Null => self.put_u8(0),
            Value::Bool(b) => {
                self.put_u8(1);
                self.put_u8(*b as u8);
            }
            Value::Int(i) => {
                self.put_u8(2);
                self.put_i64(*i);
            }
            Value::Float(f) => {
                self.put_u8(3);
                self.put_f64(*f);
            }
            Value::Text(s) => {
                self.put_u8(4);
                self.put_str(s);
            }
            Value::Bytes(b) => {
                self.put_u8(5);
                self.put_bytes(b);
            }
            Value::Ref(a) => {
                self.put_u8(6);
                self.put_atom_id(*a);
            }
            Value::RefSet(v) => {
                self.put_u8(7);
                self.put_u64(v.len() as u64);
                for a in v {
                    self.put_atom_id(*a);
                }
            }
        }
    }

    /// Writes an arity-prefixed tuple.
    pub fn put_tuple(&mut self, t: &Tuple) {
        self.put_u64(t.arity() as u64);
        for v in t.values() {
            self.put_value(v);
        }
    }
}

/// Strict decoder over a byte slice.
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Decoder over `buf`, starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Decoder<'a> {
        Decoder { buf, pos: 0 }
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when fully consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn need(&self, n: usize) -> Result<()> {
        if self.remaining() < n {
            Err(Error::corruption(format!(
                "decoder underrun: need {n} bytes, have {}",
                self.remaining()
            )))
        } else {
            Ok(())
        }
    }

    /// Reads one raw byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        self.need(1)?;
        let b = self.buf[self.pos];
        self.pos += 1;
        Ok(b)
    }

    /// Reads a LEB128 unsigned varint.
    pub fn get_u64(&mut self) -> Result<u64> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.get_u8()?;
            if shift >= 64 {
                return Err(Error::corruption("varint overflow"));
            }
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Reads a zig-zag signed varint.
    pub fn get_i64(&mut self) -> Result<i64> {
        let z = self.get_u64()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    /// Reads a little-endian f64.
    pub fn get_f64(&mut self) -> Result<f64> {
        self.need(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(&self.buf[self.pos..self.pos + 8]);
        self.pos += 8;
        Ok(f64::from_le_bytes(a))
    }

    /// Reads length-prefixed bytes.
    pub fn get_bytes(&mut self) -> Result<&'a [u8]> {
        let n = self.get_u64()? as usize;
        self.need(n)?;
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str> {
        let b = self.get_bytes()?;
        std::str::from_utf8(b).map_err(|_| Error::corruption("invalid utf-8 in string"))
    }

    /// Reads a time point.
    pub fn get_time(&mut self) -> Result<TimePoint> {
        Ok(TimePoint(self.get_u64()?))
    }

    /// Reads an interval; validates non-emptiness.
    pub fn get_interval(&mut self) -> Result<Interval> {
        let s = self.get_time()?;
        let e = self.get_time()?;
        Interval::new(s, e)
            .ok_or_else(|| Error::corruption(format!("empty interval [{s:?},{e:?})")))
    }

    /// Reads an atom id.
    pub fn get_atom_id(&mut self) -> Result<AtomId> {
        Ok(AtomId::unpack(self.get_u64()?))
    }

    /// Reads a record id.
    pub fn get_record_id(&mut self) -> Result<RecordId> {
        Ok(RecordId::unpack(self.get_u64()?))
    }

    /// Reads one tagged value.
    pub fn get_value(&mut self) -> Result<Value> {
        let tag = self.get_u8()?;
        Ok(match tag {
            0 => Value::Null,
            1 => Value::Bool(self.get_u8()? != 0),
            2 => Value::Int(self.get_i64()?),
            3 => Value::Float(self.get_f64()?),
            4 => Value::Text(self.get_str()?.to_owned()),
            5 => Value::Bytes(self.get_bytes()?.to_vec()),
            6 => Value::Ref(self.get_atom_id()?),
            7 => {
                let n = self.get_u64()? as usize;
                if n > self.remaining() {
                    return Err(Error::corruption("refset length exceeds buffer"));
                }
                let mut v = Vec::with_capacity(n);
                for _ in 0..n {
                    v.push(self.get_atom_id()?);
                }
                Value::RefSet(v)
            }
            t => return Err(Error::corruption(format!("unknown value tag {t}"))),
        })
    }

    /// Reads an arity-prefixed tuple.
    pub fn get_tuple(&mut self) -> Result<Tuple> {
        let n = self.get_u64()? as usize;
        if n > self.remaining() {
            return Err(Error::corruption("tuple arity exceeds buffer"));
        }
        let mut vals = Vec::with_capacity(n);
        for _ in 0..n {
            vals.push(self.get_value()?);
        }
        Ok(Tuple::new(vals))
    }
}

/// CRC-32 (Castagnoli polynomial, software implementation) used to protect
/// WAL records and page headers. Small lookup-table variant; fast enough
/// for the log path and dependency-free.
pub fn crc32c(data: &[u8]) -> u32 {
    const POLY: u32 = 0x82F6_3B78;
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { (c >> 1) ^ POLY } else { c >> 1 };
            }
            *e = c;
        }
        t
    });
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{AtomNo, AtomTypeId, PageId, SlotId};
    use crate::time::iv;

    #[test]
    fn varint_roundtrip_edges() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut e = Encoder::new();
            e.put_u64(v);
            let bytes = e.finish();
            let mut d = Decoder::new(&bytes);
            assert_eq!(d.get_u64().unwrap(), v);
            assert!(d.is_exhausted());
        }
    }

    #[test]
    fn signed_varint_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 42_424_242] {
            let mut e = Encoder::new();
            e.put_i64(v);
            let bytes = e.finish();
            assert_eq!(Decoder::new(&bytes).get_i64().unwrap(), v);
        }
    }

    #[test]
    fn value_roundtrip_all_variants() {
        let vals = vec![
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(-123456789),
            Value::Float(3.5),
            Value::Float(f64::NEG_INFINITY),
            Value::Text("héllo wörld".into()),
            Value::Text(String::new()),
            Value::Bytes(vec![0, 255, 127]),
            Value::Ref(AtomId::new(AtomTypeId(3), AtomNo(77))),
            Value::ref_set([
                AtomId::new(AtomTypeId(1), AtomNo(1)),
                AtomId::new(AtomTypeId(1), AtomNo(2)),
            ]),
        ];
        for v in &vals {
            let mut e = Encoder::new();
            e.put_value(v);
            let bytes = e.finish();
            let mut d = Decoder::new(&bytes);
            assert_eq!(&d.get_value().unwrap(), v);
            assert!(d.is_exhausted());
        }
    }

    #[test]
    fn tuple_roundtrip() {
        let t = Tuple::new(vec![Value::Int(5), Value::from("abc"), Value::Null]);
        let mut e = Encoder::new();
        e.put_tuple(&t);
        let bytes = e.finish();
        assert_eq!(Decoder::new(&bytes).get_tuple().unwrap(), t);
    }

    #[test]
    fn interval_and_ids_roundtrip() {
        let mut e = Encoder::new();
        e.put_interval(&iv(3, 9));
        e.put_record_id(RecordId::new(PageId(8), SlotId(2)));
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_interval().unwrap(), iv(3, 9));
        assert_eq!(
            d.get_record_id().unwrap(),
            RecordId::new(PageId(8), SlotId(2))
        );
    }

    #[test]
    fn decoder_rejects_corruption() {
        // truncated varint
        assert!(Decoder::new(&[0x80]).get_u64().is_err());
        // unknown value tag
        assert!(Decoder::new(&[42]).get_value().is_err());
        // string with bogus length
        let mut e = Encoder::new();
        e.put_u64(1000);
        let bytes = e.finish();
        assert!(Decoder::new(&bytes).get_bytes().is_err());
        // empty interval
        let mut e = Encoder::new();
        e.put_time(TimePoint(5));
        e.put_time(TimePoint(5));
        let bytes = e.finish();
        assert!(Decoder::new(&bytes).get_interval().is_err());
        // invalid utf-8
        let mut e = Encoder::new();
        e.put_bytes(&[0xff, 0xfe]);
        let bytes = e.finish();
        assert!(Decoder::new(&bytes).get_str().is_err());
    }

    #[test]
    fn crc32c_known_vector() {
        // RFC 3720 test vector: 32 bytes of zeros.
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        // "123456789"
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_ne!(crc32c(b"abc"), crc32c(b"abd"));
    }
}
