//! The temporal domain: time points, half-open intervals, temporal elements
//! and bitemporal stamps.
//!
//! The model follows the conventions of the temporal-database literature the
//! paper builds on:
//!
//! * Time is discrete and linear. A [`TimePoint`] is a logical tick (`u64`).
//!   Transaction time is drawn from the engine's commit counter; valid time
//!   is supplied by the application (e.g. days since an epoch).
//! * Intervals are **half-open** `[start, end)`. The open end avoids the
//!   classic off-by-one ambiguities when intervals abut.
//! * `TimePoint::FOREVER` (`u64::MAX`) plays the role of *until changed* /
//!   *now* for the end of open intervals: a currently-valid version has
//!   `vt = [s, FOREVER)` and a currently-recorded version `tt = [s, FOREVER)`.
//! * A [`TemporalElement`] is a finite union of intervals kept in canonical
//!   form (sorted, pairwise disjoint, non-adjacent). It is closed under
//!   union, intersection and difference, which makes it the natural carrier
//!   for valid-time bookkeeping during bitemporal updates.

use std::fmt;

/// A discrete point on a (valid- or transaction-) time axis.
///
/// `TimePoint` is a transparent newtype over `u64` ordered in the obvious
/// way. The maximal value is reserved as [`TimePoint::FOREVER`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimePoint(pub u64);

impl TimePoint {
    /// The smallest representable instant.
    pub const MIN: TimePoint = TimePoint(0);
    /// Sentinel for *until changed* / the open end of current intervals.
    pub const FOREVER: TimePoint = TimePoint(u64::MAX);

    /// Returns the successor instant. Saturates at [`TimePoint::FOREVER`].
    #[inline]
    pub fn next(self) -> TimePoint {
        TimePoint(self.0.saturating_add(1))
    }

    /// Returns the predecessor instant. Saturates at [`TimePoint::MIN`].
    #[inline]
    pub fn prev(self) -> TimePoint {
        TimePoint(self.0.saturating_sub(1))
    }

    /// True iff this is the `FOREVER` sentinel.
    #[inline]
    pub fn is_forever(self) -> bool {
        self == TimePoint::FOREVER
    }
}

impl fmt::Debug for TimePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_forever() {
            write!(f, "∞")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

impl fmt::Display for TimePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<u64> for TimePoint {
    fn from(v: u64) -> Self {
        TimePoint(v)
    }
}

/// A non-empty half-open interval `[start, end)` on a time axis.
///
/// Emptiness is unrepresentable: [`Interval::new`] rejects `start >= end`.
/// This invariant keeps every downstream algorithm total — no operator ever
/// has to ask "but what if the interval is empty?".
///
/// Ordering is lexicographic on `(start, end)` — useful for canonical
/// sorting; it is *not* a containment or precedence order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Interval {
    start: TimePoint,
    end: TimePoint,
}

impl Interval {
    /// Creates `[start, end)`. Returns `None` when the interval would be
    /// empty (`start >= end`).
    #[inline]
    pub fn new(start: TimePoint, end: TimePoint) -> Option<Interval> {
        if start < end {
            Some(Interval { start, end })
        } else {
            None
        }
    }

    /// `[start, FOREVER)` — the canonical *currently true* interval.
    #[inline]
    pub fn from_start(start: TimePoint) -> Interval {
        Interval {
            start,
            end: TimePoint::FOREVER,
        }
    }

    /// `[MIN, FOREVER)` — the whole axis.
    #[inline]
    pub fn all() -> Interval {
        Interval {
            start: TimePoint::MIN,
            end: TimePoint::FOREVER,
        }
    }

    /// The single-instant interval `[t, t+1)`. Returns `None` for
    /// `t == FOREVER` (which has no successor).
    #[inline]
    pub fn at(t: TimePoint) -> Option<Interval> {
        Interval::new(t, t.next())
    }

    /// Inclusive lower bound.
    #[inline]
    pub fn start(&self) -> TimePoint {
        self.start
    }

    /// Exclusive upper bound.
    #[inline]
    pub fn end(&self) -> TimePoint {
        self.end
    }

    /// Number of instants covered; `None` when the interval is open-ended.
    #[inline]
    pub fn duration(&self) -> Option<u64> {
        if self.end.is_forever() {
            None
        } else {
            Some(self.end.0 - self.start.0)
        }
    }

    /// True iff the interval extends to `FOREVER` (is *current*).
    #[inline]
    pub fn is_open_ended(&self) -> bool {
        self.end.is_forever()
    }

    /// Membership test: `start <= t < end`.
    #[inline]
    pub fn contains(&self, t: TimePoint) -> bool {
        self.start <= t && t < self.end
    }

    /// True iff `other` is entirely inside `self`.
    #[inline]
    pub fn covers(&self, other: &Interval) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// True iff the two intervals share at least one instant.
    #[inline]
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// True iff the intervals abut without overlapping (`[a,b) [b,c)`).
    #[inline]
    pub fn is_adjacent(&self, other: &Interval) -> bool {
        self.end == other.start || other.end == self.start
    }

    /// Intersection; `None` when disjoint.
    #[inline]
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        Interval::new(self.start.max(other.start), self.end.min(other.end))
    }

    /// Union of two overlapping-or-adjacent intervals; `None` when the
    /// result would not be a single interval.
    #[inline]
    pub fn merge(&self, other: &Interval) -> Option<Interval> {
        if self.overlaps(other) || self.is_adjacent(other) {
            Interval::new(self.start.min(other.start), self.end.max(other.end))
        } else {
            None
        }
    }

    /// `self − other` as (left remainder, right remainder). Either side may
    /// be `None`; both are `None` exactly when `other` covers `self`.
    pub fn subtract(&self, other: &Interval) -> (Option<Interval>, Option<Interval>) {
        if !self.overlaps(other) {
            return (Some(*self), None);
        }
        let left = Interval::new(self.start, other.start.min(self.end));
        let right = Interval::new(other.end.max(self.start), self.end);
        (left, right)
    }

    /// Allen-style relation classification, collapsed to the cases temporal
    /// query processing distinguishes.
    pub fn relate(&self, other: &Interval) -> IntervalRelation {
        if self == other {
            IntervalRelation::Equal
        } else if self.end <= other.start {
            if self.end == other.start {
                IntervalRelation::Meets
            } else {
                IntervalRelation::Before
            }
        } else if other.end <= self.start {
            if other.end == self.start {
                IntervalRelation::MetBy
            } else {
                IntervalRelation::After
            }
        } else if self.covers(other) {
            IntervalRelation::Contains
        } else if other.covers(self) {
            IntervalRelation::During
        } else {
            IntervalRelation::Overlaps
        }
    }
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:?},{:?})", self.start, self.end)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Coarse interval relationship (Allen's algebra with the symmetric overlap
/// cases collapsed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IntervalRelation {
    /// `self` ends strictly before `other` starts.
    Before,
    /// `self.end == other.start`.
    Meets,
    /// The intervals share instants but neither contains the other.
    Overlaps,
    /// `self` strictly contains `other` (and they differ).
    Contains,
    /// `other` strictly contains `self` (and they differ).
    During,
    /// The intervals are identical.
    Equal,
    /// `other.end == self.start`.
    MetBy,
    /// `self` starts strictly after `other` ends.
    After,
}

/// A finite union of intervals in canonical form: sorted by start, pairwise
/// disjoint, and never adjacent (adjacent intervals are merged eagerly).
///
/// Temporal elements are the natural representation for "the set of valid
/// instants of this fact" and are what the bitemporal DML algorithms
/// manipulate. Canonical form makes equality structural.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct TemporalElement {
    ivs: Vec<Interval>,
}

impl TemporalElement {
    /// The empty element.
    pub fn empty() -> TemporalElement {
        TemporalElement::default()
    }

    /// The element covering the whole axis.
    pub fn all() -> TemporalElement {
        TemporalElement {
            ivs: vec![Interval::all()],
        }
    }

    /// Element consisting of a single interval.
    pub fn from_interval(iv: Interval) -> TemporalElement {
        TemporalElement { ivs: vec![iv] }
    }

    /// Builds a canonical element from arbitrary (possibly overlapping,
    /// unsorted, adjacent) intervals.
    pub fn from_intervals<I: IntoIterator<Item = Interval>>(ivs: I) -> TemporalElement {
        let mut v: Vec<Interval> = ivs.into_iter().collect();
        v.sort_by_key(|iv| (iv.start(), iv.end()));
        let mut out: Vec<Interval> = Vec::with_capacity(v.len());
        for iv in v {
            match out.last_mut() {
                Some(last) if last.overlaps(&iv) || last.is_adjacent(&iv) => {
                    // merge() cannot fail: we just checked the precondition.
                    *last = last.merge(&iv).expect("overlapping or adjacent");
                }
                _ => out.push(iv),
            }
        }
        TemporalElement { ivs: out }
    }

    /// The canonical intervals, sorted and disjoint.
    pub fn intervals(&self) -> &[Interval] {
        &self.ivs
    }

    /// True iff no instant is covered.
    pub fn is_empty(&self) -> bool {
        self.ivs.is_empty()
    }

    /// Number of maximal intervals.
    pub fn len(&self) -> usize {
        self.ivs.len()
    }

    /// Membership test for a single instant (binary search).
    pub fn contains(&self, t: TimePoint) -> bool {
        match self.ivs.binary_search_by(|iv| iv.start().cmp(&t)) {
            Ok(_) => true,
            Err(0) => false,
            Err(i) => self.ivs[i - 1].contains(t),
        }
    }

    /// Set union.
    pub fn union(&self, other: &TemporalElement) -> TemporalElement {
        TemporalElement::from_intervals(self.ivs.iter().chain(other.ivs.iter()).copied())
    }

    /// Set intersection (linear merge of the two sorted interval lists).
    pub fn intersect(&self, other: &TemporalElement) -> TemporalElement {
        let (mut i, mut j) = (0, 0);
        let mut out = Vec::new();
        while i < self.ivs.len() && j < other.ivs.len() {
            if let Some(iv) = self.ivs[i].intersect(&other.ivs[j]) {
                out.push(iv);
            }
            if self.ivs[i].end() <= other.ivs[j].end() {
                i += 1;
            } else {
                j += 1;
            }
        }
        // Already canonical: inputs were canonical and intersection preserves
        // order and disjointness, but adjacency can appear when inputs had
        // adjacent-but-merged shapes — normalize to be safe.
        TemporalElement::from_intervals(out)
    }

    /// Set difference `self − other`.
    pub fn difference(&self, other: &TemporalElement) -> TemporalElement {
        let mut out = Vec::new();
        let mut j = 0;
        for iv in &self.ivs {
            let mut rest = *iv;
            // Skip other-intervals entirely before `rest`.
            while j < other.ivs.len() && other.ivs[j].end() <= rest.start() {
                j += 1;
            }
            let mut k = j;
            let mut alive = true;
            while k < other.ivs.len() && alive {
                let cut = other.ivs[k];
                if cut.start() >= rest.end() {
                    break;
                }
                let (left, right) = rest.subtract(&cut);
                if let Some(l) = left {
                    out.push(l);
                }
                match right {
                    Some(r) => rest = r,
                    None => alive = false,
                }
                k += 1;
            }
            if alive {
                out.push(rest);
            }
        }
        TemporalElement::from_intervals(out)
    }

    /// Complement relative to `universe`.
    pub fn complement(&self, universe: &Interval) -> TemporalElement {
        TemporalElement::from_interval(*universe).difference(self)
    }

    /// True iff the two elements share at least one instant.
    pub fn overlaps(&self, other: &TemporalElement) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.ivs.len() && j < other.ivs.len() {
            if self.ivs[i].overlaps(&other.ivs[j]) {
                return true;
            }
            if self.ivs[i].end() <= other.ivs[j].end() {
                i += 1;
            } else {
                j += 1;
            }
        }
        false
    }

    /// Total number of instants covered; `None` if any interval is open-ended.
    pub fn duration(&self) -> Option<u64> {
        self.ivs.iter().map(|iv| iv.duration()).sum()
    }

    /// Earliest covered instant.
    pub fn min(&self) -> Option<TimePoint> {
        self.ivs.first().map(|iv| iv.start())
    }

    /// Supremum of covered instants (exclusive).
    pub fn max_end(&self) -> Option<TimePoint> {
        self.ivs.last().map(|iv| iv.end())
    }
}

impl fmt::Debug for TemporalElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, iv) in self.ivs.iter().enumerate() {
            if i > 0 {
                write!(f, " ∪ ")?;
            }
            write!(f, "{:?}", iv)?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Interval> for TemporalElement {
    fn from_iter<T: IntoIterator<Item = Interval>>(iter: T) -> Self {
        TemporalElement::from_intervals(iter)
    }
}

/// A bitemporal stamp: the valid-time and transaction-time rectangle of a
/// stored version.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct BitemporalStamp {
    /// When the fact holds in the modeled reality.
    pub vt: Interval,
    /// When the fact was part of the recorded database state.
    pub tt: Interval,
}

impl BitemporalStamp {
    /// A fact valid over `vt`, recorded from transaction time `tt_start` and
    /// still current.
    pub fn current(vt: Interval, tt_start: TimePoint) -> BitemporalStamp {
        BitemporalStamp {
            vt,
            tt: Interval::from_start(tt_start),
        }
    }

    /// True iff the version is visible at bitemporal point `(tt, vt)`.
    #[inline]
    pub fn visible_at(&self, tt: TimePoint, vt: TimePoint) -> bool {
        self.tt.contains(tt) && self.vt.contains(vt)
    }

    /// True iff the version is part of the current database state
    /// (transaction-time end is open).
    #[inline]
    pub fn is_tt_current(&self) -> bool {
        self.tt.is_open_ended()
    }
}

impl fmt::Debug for BitemporalStamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vt{:?}×tt{:?}", self.vt, self.tt)
    }
}

/// Convenience constructor: `[s, e)` for tests and examples; panics on empty.
pub fn iv(s: u64, e: u64) -> Interval {
    Interval::new(TimePoint(s), TimePoint(e)).expect("non-empty interval literal")
}

/// Convenience constructor: `[s, ∞)`.
pub fn iv_from(s: u64) -> Interval {
    Interval::from_start(TimePoint(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timepoint_order_and_sentinels() {
        assert!(TimePoint::MIN < TimePoint(1));
        assert!(TimePoint(5) < TimePoint::FOREVER);
        assert!(TimePoint::FOREVER.is_forever());
        assert_eq!(TimePoint::FOREVER.next(), TimePoint::FOREVER);
        assert_eq!(TimePoint::MIN.prev(), TimePoint::MIN);
        assert_eq!(TimePoint(3).next(), TimePoint(4));
        assert_eq!(format!("{}", TimePoint::FOREVER), "∞");
    }

    #[test]
    fn from_start_is_open_ended() {
        assert!(Interval::from_start(TimePoint(3)).is_open_ended());
    }

    #[test]
    fn interval_rejects_empty() {
        assert!(Interval::new(TimePoint(5), TimePoint(5)).is_none());
        assert!(Interval::new(TimePoint(6), TimePoint(5)).is_none());
        assert!(Interval::new(TimePoint(5), TimePoint(6)).is_some());
        assert!(Interval::at(TimePoint::FOREVER).is_none());
    }

    #[test]
    fn interval_contains_is_half_open() {
        let i = iv(2, 5);
        assert!(!i.contains(TimePoint(1)));
        assert!(i.contains(TimePoint(2)));
        assert!(i.contains(TimePoint(4)));
        assert!(!i.contains(TimePoint(5)));
    }

    #[test]
    fn interval_overlap_and_adjacency() {
        assert!(iv(0, 5).overlaps(&iv(4, 9)));
        assert!(!iv(0, 5).overlaps(&iv(5, 9)));
        assert!(iv(0, 5).is_adjacent(&iv(5, 9)));
        assert!(iv(5, 9).is_adjacent(&iv(0, 5)));
        assert!(!iv(0, 5).is_adjacent(&iv(6, 9)));
    }

    #[test]
    fn interval_intersect_merge() {
        assert_eq!(iv(0, 5).intersect(&iv(3, 9)), Some(iv(3, 5)));
        assert_eq!(iv(0, 5).intersect(&iv(5, 9)), None);
        assert_eq!(iv(0, 5).merge(&iv(5, 9)), Some(iv(0, 9)));
        assert_eq!(iv(0, 5).merge(&iv(3, 9)), Some(iv(0, 9)));
        assert_eq!(iv(0, 5).merge(&iv(6, 9)), None);
    }

    #[test]
    fn interval_subtract_cases() {
        // disjoint
        assert_eq!(iv(0, 5).subtract(&iv(7, 9)), (Some(iv(0, 5)), None));
        // cut in the middle
        assert_eq!(
            iv(0, 10).subtract(&iv(3, 6)),
            (Some(iv(0, 3)), Some(iv(6, 10)))
        );
        // cut left edge
        assert_eq!(iv(0, 10).subtract(&iv(0, 4)), (None, Some(iv(4, 10))));
        // cut right edge
        assert_eq!(iv(0, 10).subtract(&iv(6, 10)), (Some(iv(0, 6)), None));
        // fully covered
        assert_eq!(iv(3, 6).subtract(&iv(0, 10)), (None, None));
    }

    #[test]
    fn interval_relations() {
        use IntervalRelation::*;
        assert_eq!(iv(0, 2).relate(&iv(5, 7)), Before);
        assert_eq!(iv(0, 5).relate(&iv(5, 7)), Meets);
        assert_eq!(iv(0, 6).relate(&iv(5, 7)), Overlaps);
        assert_eq!(iv(0, 9).relate(&iv(5, 7)), Contains);
        assert_eq!(iv(5, 7).relate(&iv(0, 9)), During);
        assert_eq!(iv(5, 7).relate(&iv(5, 7)), Equal);
        assert_eq!(iv(5, 7).relate(&iv(0, 5)), MetBy);
        assert_eq!(iv(5, 7).relate(&iv(0, 3)), After);
    }

    #[test]
    fn element_canonicalization_merges_overlaps_and_adjacency() {
        let e = TemporalElement::from_intervals([iv(5, 8), iv(0, 3), iv(3, 5), iv(20, 25)]);
        assert_eq!(e.intervals(), &[iv(0, 8), iv(20, 25)]);
    }

    #[test]
    fn element_contains() {
        let e = TemporalElement::from_intervals([iv(0, 3), iv(10, 20)]);
        assert!(e.contains(TimePoint(0)));
        assert!(e.contains(TimePoint(2)));
        assert!(!e.contains(TimePoint(3)));
        assert!(e.contains(TimePoint(15)));
        assert!(!e.contains(TimePoint(25)));
        assert!(!TemporalElement::empty().contains(TimePoint(0)));
    }

    #[test]
    fn element_union_intersect_difference() {
        let a = TemporalElement::from_intervals([iv(0, 10), iv(20, 30)]);
        let b = TemporalElement::from_intervals([iv(5, 25)]);
        assert_eq!(a.union(&b).intervals(), &[iv(0, 30)]);
        assert_eq!(a.intersect(&b).intervals(), &[iv(5, 10), iv(20, 25)]);
        assert_eq!(a.difference(&b).intervals(), &[iv(0, 5), iv(25, 30)]);
        assert_eq!(b.difference(&a).intervals(), &[iv(10, 20)]);
    }

    #[test]
    fn element_difference_multi_cut() {
        let a = TemporalElement::from_interval(iv(0, 100));
        let b = TemporalElement::from_intervals([iv(10, 20), iv(30, 40), iv(90, 200)]);
        assert_eq!(
            a.difference(&b).intervals(),
            &[iv(0, 10), iv(20, 30), iv(40, 90)]
        );
    }

    #[test]
    fn element_complement() {
        let a = TemporalElement::from_intervals([iv(10, 20)]);
        let u = iv(0, 30);
        assert_eq!(a.complement(&u).intervals(), &[iv(0, 10), iv(20, 30)]);
        assert_eq!(
            TemporalElement::empty().complement(&u).intervals(),
            &[iv(0, 30)]
        );
    }

    #[test]
    fn element_overlaps_and_duration() {
        let a = TemporalElement::from_intervals([iv(0, 5), iv(10, 15)]);
        let b = TemporalElement::from_intervals([iv(5, 10)]);
        assert!(!a.overlaps(&b));
        let c = TemporalElement::from_intervals([iv(4, 6)]);
        assert!(a.overlaps(&c));
        assert_eq!(a.duration(), Some(10));
        assert_eq!(TemporalElement::from_interval(iv_from(3)).duration(), None);
    }

    #[test]
    fn element_min_max() {
        let a = TemporalElement::from_intervals([iv(3, 5), iv(10, 15)]);
        assert_eq!(a.min(), Some(TimePoint(3)));
        assert_eq!(a.max_end(), Some(TimePoint(15)));
        assert_eq!(TemporalElement::empty().min(), None);
    }

    #[test]
    fn stamp_visibility() {
        let s = BitemporalStamp::current(iv(10, 20), TimePoint(5));
        assert!(s.visible_at(TimePoint(5), TimePoint(10)));
        assert!(s.visible_at(TimePoint(1000), TimePoint(19)));
        assert!(!s.visible_at(TimePoint(4), TimePoint(15)));
        assert!(!s.visible_at(TimePoint(5), TimePoint(20)));
        assert!(s.is_tt_current());
    }
}
