//! Identifier newtypes shared across the engine.
//!
//! Every identifier is a transparent newtype so that the type system keeps
//! page ids, atom numbers, type ids etc. from being mixed up — a real hazard
//! in a storage engine where everything is ultimately a `u32`/`u64`.

use std::fmt;

/// Identifies an atom type (the complex-object analogue of a table).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AtomTypeId(pub u32);

/// Identifies an attribute within an atom type by ordinal position.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AttrId(pub u16);

/// The per-type sequence number of an atom. Together with its
/// [`AtomTypeId`] it forms the globally unique [`AtomId`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AtomNo(pub u64);

/// Globally unique, immutable identity of an atom (never reused; survives
/// all updates — versions share the atom id).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AtomId {
    /// The atom's type.
    pub ty: AtomTypeId,
    /// The per-type sequence number.
    pub no: AtomNo,
}

impl AtomId {
    /// Composes an atom id from its parts.
    pub fn new(ty: AtomTypeId, no: AtomNo) -> AtomId {
        AtomId { ty, no }
    }

    /// Packs the id into a single `u64` key for index use:
    /// `type_id` in the high 16 bits, atom number in the low 48.
    ///
    /// Panics in debug builds if either component is out of range; the
    /// engine's id allocators keep them in range by construction.
    pub fn pack(self) -> u64 {
        debug_assert!(self.ty.0 < (1 << 16));
        debug_assert!(self.no.0 < (1 << 48));
        ((self.ty.0 as u64) << 48) | (self.no.0 & ((1 << 48) - 1))
    }

    /// Inverse of [`AtomId::pack`].
    pub fn unpack(key: u64) -> AtomId {
        AtomId {
            ty: AtomTypeId((key >> 48) as u32),
            no: AtomNo(key & ((1 << 48) - 1)),
        }
    }
}

impl fmt::Debug for AtomId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}.{}", self.ty.0, self.no.0)
    }
}

impl fmt::Display for AtomId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Identifies a molecule type (a named complex-object structure).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MoleculeTypeId(pub u32);

/// A page number within one storage file.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u32);

impl PageId {
    /// Sentinel meaning "no page" in on-disk link fields.
    pub const INVALID: PageId = PageId(u32::MAX);

    /// True iff this is the invalid sentinel.
    pub fn is_invalid(self) -> bool {
        self == PageId::INVALID
    }
}

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_invalid() {
            write!(f, "p⊥")
        } else {
            write!(f, "p{}", self.0)
        }
    }
}

/// Slot index within a slotted page.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SlotId(pub u16);

/// Physical record address: `(page, slot)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecordId {
    /// Containing page.
    pub page: PageId,
    /// Slot within the page.
    pub slot: SlotId,
}

impl RecordId {
    /// Sentinel meaning "no record" in on-disk link fields.
    pub const INVALID: RecordId = RecordId {
        page: PageId::INVALID,
        slot: SlotId(u16::MAX),
    };

    /// Composes a record id.
    pub fn new(page: PageId, slot: SlotId) -> RecordId {
        RecordId { page, slot }
    }

    /// True iff this is the invalid sentinel.
    pub fn is_invalid(self) -> bool {
        self.page.is_invalid()
    }

    /// Packs into a `u64` for index payloads (`page` high, `slot` low).
    pub fn pack(self) -> u64 {
        ((self.page.0 as u64) << 16) | self.slot.0 as u64
    }

    /// Inverse of [`RecordId::pack`].
    pub fn unpack(v: u64) -> RecordId {
        RecordId {
            page: PageId((v >> 16) as u32),
            slot: SlotId((v & 0xFFFF) as u16),
        }
    }
}

impl fmt::Debug for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_invalid() {
            write!(f, "r⊥")
        } else {
            write!(f, "r{}:{}", self.page.0, self.slot.0)
        }
    }
}

/// Transaction identifier (the engine's commit counter doubles as the
/// transaction-time clock, so `TxnId` values are comparable with
/// transaction-time [`crate::time::TimePoint`]s).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TxnId(pub u64);

/// Log sequence number within the write-ahead log.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Lsn(pub u64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atom_id_pack_roundtrip() {
        let id = AtomId::new(AtomTypeId(7), AtomNo(123_456_789));
        assert_eq!(AtomId::unpack(id.pack()), id);
        let hi = AtomId::new(AtomTypeId(65_535), AtomNo((1 << 48) - 1));
        assert_eq!(AtomId::unpack(hi.pack()), hi);
        let lo = AtomId::new(AtomTypeId(0), AtomNo(0));
        assert_eq!(AtomId::unpack(lo.pack()), lo);
    }

    #[test]
    fn atom_id_pack_orders_by_type_then_no() {
        let a = AtomId::new(AtomTypeId(1), AtomNo(999)).pack();
        let b = AtomId::new(AtomTypeId(2), AtomNo(0)).pack();
        assert!(a < b);
        let c = AtomId::new(AtomTypeId(2), AtomNo(1)).pack();
        assert!(b < c);
    }

    #[test]
    fn record_id_pack_roundtrip() {
        let r = RecordId::new(PageId(42), SlotId(17));
        assert_eq!(RecordId::unpack(r.pack()), r);
        assert!(RecordId::INVALID.is_invalid());
        assert!(!r.is_invalid());
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", AtomId::new(AtomTypeId(3), AtomNo(9))), "a3.9");
        assert_eq!(format!("{:?}", PageId::INVALID), "p⊥");
        assert_eq!(format!("{:?}", RecordId::new(PageId(1), SlotId(2))), "r1:2");
    }
}
