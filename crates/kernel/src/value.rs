//! The value model: typed attribute values and tuples.
//!
//! Atoms are tuples over a fixed attribute list. Besides the usual scalar
//! types, the complex-object model contributes two **reference** types —
//! [`Value::Ref`] and [`Value::RefSet`] — whose values are atom identities.
//! Molecules (complex objects) arise by transitively dereferencing these.

use crate::ids::{AtomId, AtomTypeId};
use std::cmp::Ordering;
use std::fmt;

/// Declared type of an attribute.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string.
    Text,
    /// Raw bytes.
    Bytes,
    /// Single reference to an atom of the given type (nullable link).
    Ref(AtomTypeId),
    /// Set-valued reference to atoms of the given type (0..n links).
    RefSet(AtomTypeId),
}

impl DataType {
    /// True for the two link-attribute types.
    pub fn is_reference(&self) -> bool {
        matches!(self, DataType::Ref(_) | DataType::RefSet(_))
    }

    /// Target atom type for link attributes.
    pub fn ref_target(&self) -> Option<AtomTypeId> {
        match self {
            DataType::Ref(t) | DataType::RefSet(t) => Some(*t),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Bool => write!(f, "BOOL"),
            DataType::Int => write!(f, "INT"),
            DataType::Float => write!(f, "FLOAT"),
            DataType::Text => write!(f, "TEXT"),
            DataType::Bytes => write!(f, "BYTES"),
            DataType::Ref(t) => write!(f, "REF(type {})", t.0),
            DataType::RefSet(t) => write!(f, "REFSET(type {})", t.0),
        }
    }
}

/// A runtime attribute value.
///
/// `Null` is a member of every type (all attributes are nullable; the
/// catalog can mark attributes `NOT NULL`, enforced at DML time).
#[derive(Clone, PartialEq, Debug, Default)]
pub enum Value {
    /// Absent value.
    #[default]
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Text(String),
    /// Bytes.
    Bytes(Vec<u8>),
    /// Single link. A dangling-free engine guarantees the target exists at
    /// insertion transaction time (referential checks are the catalog's job).
    Ref(AtomId),
    /// Set-valued link, kept sorted and deduplicated (canonical form so that
    /// value equality is structural).
    RefSet(Vec<AtomId>),
}

impl Value {
    /// Canonicalizing constructor for reference sets: sorts and dedups.
    pub fn ref_set<I: IntoIterator<Item = AtomId>>(ids: I) -> Value {
        let mut v: Vec<AtomId> = ids.into_iter().collect();
        v.sort();
        v.dedup();
        Value::RefSet(v)
    }

    /// True iff the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Checks this value against a declared type. `Null` matches anything.
    pub fn matches_type(&self, ty: &DataType) -> bool {
        match (self, ty) {
            (Value::Null, _) => true,
            (Value::Bool(_), DataType::Bool) => true,
            (Value::Int(_), DataType::Int) => true,
            (Value::Float(_), DataType::Float) => true,
            (Value::Text(_), DataType::Text) => true,
            (Value::Bytes(_), DataType::Bytes) => true,
            (Value::Ref(a), DataType::Ref(t)) => a.ty == *t,
            (Value::RefSet(v), DataType::RefSet(t)) => v.iter().all(|a| a.ty == *t),
            _ => false,
        }
    }

    /// SQL-style three-valued comparison: `None` when either side is `Null`
    /// or the variants are incomparable. Ints and floats compare numerically.
    pub fn partial_cmp_sql(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => a.partial_cmp(b),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            (Text(a), Text(b)) => Some(a.cmp(b)),
            (Bytes(a), Bytes(b)) => Some(a.cmp(b)),
            (Ref(a), Ref(b)) => Some(a.cmp(b)),
            (RefSet(a), RefSet(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Equality under SQL three-valued logic: `None` when either side is
    /// `Null`.
    pub fn eq_sql(&self, other: &Value) -> Option<bool> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            _ => Some(self.partial_cmp_sql(other) == Some(Ordering::Equal)),
        }
    }

    /// The members of a reference attribute: one for `Ref`, many for
    /// `RefSet`, empty otherwise.
    pub fn referenced_atoms(&self) -> &[AtomId] {
        match self {
            Value::Ref(a) => std::slice::from_ref(a),
            Value::RefSet(v) => v.as_slice(),
            _ => &[],
        }
    }

    /// Approximate in-memory/encoded size in bytes; used by the storage
    /// format planners and benchmarks.
    pub fn approx_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 2,
            Value::Int(_) | Value::Float(_) => 9,
            Value::Text(s) => 5 + s.len(),
            Value::Bytes(b) => 5 + b.len(),
            Value::Ref(_) => 9,
            Value::RefSet(v) => 5 + 8 * v.len(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "'{s}'"),
            Value::Bytes(b) => write!(f, "x'{}'", hex(b)),
            Value::Ref(a) => write!(f, "{a}"),
            Value::RefSet(v) => {
                write!(f, "{{")?;
                for (i, a) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn hex(b: &[u8]) -> String {
    b.iter().map(|x| format!("{x:02x}")).collect()
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Text(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Text(v)
    }
}
impl From<AtomId> for Value {
    fn from(v: AtomId) -> Value {
        Value::Ref(v)
    }
}

/// A tuple: the attribute values of one atom version, positionally aligned
/// with the atom type's attribute list.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Builds a tuple from values.
    pub fn new(values: Vec<Value>) -> Tuple {
        Tuple { values }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Value at attribute position `i` (panics out of range — callers go
    /// through schema validation first).
    pub fn get(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// Checked access.
    pub fn try_get(&self, i: usize) -> Option<&Value> {
        self.values.get(i)
    }

    /// Replaces the value at position `i`.
    pub fn set(&mut self, i: usize, v: Value) {
        self.values[i] = v;
    }

    /// All values in order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consumes into the value vector.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// All atoms referenced from any link attribute of this tuple.
    pub fn referenced_atoms(&self) -> impl Iterator<Item = AtomId> + '_ {
        self.values
            .iter()
            .flat_map(|v| v.referenced_atoms().iter().copied())
    }

    /// Sum of per-value approximate sizes.
    pub fn approx_size(&self) -> usize {
        self.values.iter().map(Value::approx_size).sum()
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{AtomNo, AtomTypeId};

    fn aid(ty: u32, no: u64) -> AtomId {
        AtomId::new(AtomTypeId(ty), AtomNo(no))
    }

    #[test]
    fn type_matching() {
        assert!(Value::Int(3).matches_type(&DataType::Int));
        assert!(!Value::Int(3).matches_type(&DataType::Text));
        assert!(Value::Null.matches_type(&DataType::Float));
        assert!(Value::Ref(aid(2, 1)).matches_type(&DataType::Ref(AtomTypeId(2))));
        assert!(!Value::Ref(aid(2, 1)).matches_type(&DataType::Ref(AtomTypeId(3))));
        let rs = Value::ref_set([aid(4, 1), aid(4, 2)]);
        assert!(rs.matches_type(&DataType::RefSet(AtomTypeId(4))));
        assert!(!rs.matches_type(&DataType::RefSet(AtomTypeId(5))));
    }

    #[test]
    fn ref_set_canonical() {
        let a = Value::ref_set([aid(1, 3), aid(1, 1), aid(1, 3), aid(1, 2)]);
        let b = Value::ref_set([aid(1, 1), aid(1, 2), aid(1, 3)]);
        assert_eq!(a, b);
    }

    #[test]
    fn three_valued_comparisons() {
        assert_eq!(
            Value::Int(3).partial_cmp_sql(&Value::Int(5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Int(3).partial_cmp_sql(&Value::Float(3.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(Value::Null.partial_cmp_sql(&Value::Int(5)), None);
        assert_eq!(
            Value::Int(1).partial_cmp_sql(&Value::Text("x".into())),
            None
        );
        assert_eq!(
            Value::Text("a".into()).eq_sql(&Value::Text("a".into())),
            Some(true)
        );
        assert_eq!(Value::Null.eq_sql(&Value::Null), None);
    }

    #[test]
    fn referenced_atoms_extraction() {
        let t = Tuple::new(vec![
            Value::Int(1),
            Value::Ref(aid(2, 9)),
            Value::ref_set([aid(3, 1), aid(3, 2)]),
            Value::Null,
        ]);
        let refs: Vec<AtomId> = t.referenced_atoms().collect();
        assert_eq!(refs, vec![aid(2, 9), aid(3, 1), aid(3, 2)]);
    }

    #[test]
    fn display_values() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-7).to_string(), "-7");
        assert_eq!(Value::Text("hi".into()).to_string(), "'hi'");
        assert_eq!(Value::Bytes(vec![0xde, 0xad]).to_string(), "x'dead'");
        assert_eq!(Value::Ref(aid(1, 2)).to_string(), "a1.2");
        assert_eq!(
            Value::ref_set([aid(1, 2), aid(1, 3)]).to_string(),
            "{a1.2,a1.3}"
        );
    }

    #[test]
    fn tuple_accessors() {
        let mut t: Tuple = [Value::Int(1), Value::from("x")].into_iter().collect();
        assert_eq!(t.arity(), 2);
        assert_eq!(t.get(0), &Value::Int(1));
        assert_eq!(t.try_get(5), None);
        t.set(0, Value::Int(9));
        assert_eq!(t.get(0), &Value::Int(9));
        assert!(t.approx_size() > 0);
    }
}
