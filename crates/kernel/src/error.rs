//! The engine-wide error type.
//!
//! One flat enum is used across all crates: a storage engine has fairly few
//! error *categories* and threading a single `Result` alias through the
//! stack keeps `?` ergonomic everywhere.

use std::fmt;
use std::io;

/// Engine-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// All failure modes of the engine.
#[derive(Debug)]
pub enum Error {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// A page, record or log entry failed validation (bad magic, CRC, bounds).
    Corruption(String),
    /// An operation referenced a schema object that does not exist.
    UnknownSchemaObject(String),
    /// A schema definition is invalid (duplicate names, bad link target…).
    InvalidSchema(String),
    /// A value did not match the declared attribute type.
    TypeMismatch(String),
    /// An atom id did not resolve to a stored atom.
    AtomNotFound(String),
    /// A record did not fit on a page / exceeded the maximum record size.
    RecordTooLarge(usize),
    /// The buffer pool had no evictable frame (everything pinned).
    BufferExhausted,
    /// A transaction-level violation (write conflict, commit on aborted txn…).
    Txn(String),
    /// Query-language parse error with position information.
    Parse {
        /// 1-based source line.
        line: u32,
        /// 1-based source column.
        col: u32,
        /// Human-readable description.
        msg: String,
    },
    /// Query is syntactically valid but semantically wrong (unknown names,
    /// type errors in predicates…).
    Query(String),
    /// Catch-all invariant violation; indicates a bug, not bad user input.
    Internal(String),
    /// An I/O operation was failed on purpose by the fault-injection VFS
    /// (test harnesses only; never produced in production configurations).
    FaultInjected(String),
    /// The request is well-formed but names a feature the engine does not
    /// support (e.g. `EXPLAIN ANALYZE` on a non-SELECT statement).
    Unsupported(String),
}

impl Error {
    /// Shorthand for corruption errors.
    pub fn corruption(msg: impl Into<String>) -> Error {
        Error::Corruption(msg.into())
    }

    /// Shorthand for internal invariant violations.
    pub fn internal(msg: impl Into<String>) -> Error {
        Error::Internal(msg.into())
    }

    /// Shorthand for query semantic errors.
    pub fn query(msg: impl Into<String>) -> Error {
        Error::Query(msg.into())
    }

    /// Shorthand for injected-fault errors.
    pub fn fault(msg: impl Into<String>) -> Error {
        Error::FaultInjected(msg.into())
    }

    /// Shorthand for unsupported-feature errors.
    pub fn unsupported(msg: impl Into<String>) -> Error {
        Error::Unsupported(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::Corruption(m) => write!(f, "corruption detected: {m}"),
            Error::UnknownSchemaObject(m) => write!(f, "unknown schema object: {m}"),
            Error::InvalidSchema(m) => write!(f, "invalid schema: {m}"),
            Error::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            Error::AtomNotFound(m) => write!(f, "atom not found: {m}"),
            Error::RecordTooLarge(n) => write!(f, "record too large: {n} bytes"),
            Error::BufferExhausted => write!(f, "buffer pool exhausted (all frames pinned)"),
            Error::Txn(m) => write!(f, "transaction error: {m}"),
            Error::Parse { line, col, msg } => write!(f, "parse error at {line}:{col}: {msg}"),
            Error::Query(m) => write!(f, "query error: {m}"),
            Error::Internal(m) => write!(f, "internal error: {m}"),
            Error::FaultInjected(m) => write!(f, "injected fault: {m}"),
            Error::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Error {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let cases: Vec<Error> = vec![
            Error::Io(io::Error::other("boom")),
            Error::corruption("bad magic"),
            Error::UnknownSchemaObject("emp".into()),
            Error::InvalidSchema("dup".into()),
            Error::TypeMismatch("int vs text".into()),
            Error::AtomNotFound("a1.2".into()),
            Error::RecordTooLarge(99999),
            Error::BufferExhausted,
            Error::Txn("conflict".into()),
            Error::Parse {
                line: 1,
                col: 5,
                msg: "expected ident".into(),
            },
            Error::query("unknown attribute"),
            Error::internal("unreachable"),
            Error::fault("power cut at op 17"),
            Error::unsupported("EXPLAIN ANALYZE INSERT"),
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn io_error_converts() {
        fn f() -> Result<()> {
            Err(io::Error::new(io::ErrorKind::NotFound, "gone"))?;
            Ok(())
        }
        assert!(matches!(f(), Err(Error::Io(_))));
    }
}
