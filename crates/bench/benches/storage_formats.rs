//! Criterion benches for the storage-format experiments:
//! E1 (current access), E2 (past time-slice), E3 (update cost),
//! E4/A1 (storage consumption is reported by the harness; here the write
//! paths), E6 (history retrieval).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::prelude::*;
use std::time::Duration;
use tcom_bench::workloads::{cleanup, fresh_db, Synthetic};
use tcom_core::{StoreKind, TimePoint};
use tcom_kernel::time::Interval;

const KINDS: [StoreKind; 3] = [StoreKind::Chain, StoreKind::Delta, StoreKind::Split];

/// E1 — current-version lookup vs. history length.
fn e1_current_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_current_lookup");
    g.sample_size(10)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(300));
    for kind in KINDS {
        for versions in [1usize, 16, 64] {
            let (db, dir) = fresh_db(&format!("cb-e1-{kind}-{versions}"), kind, 256);
            let syn = Synthetic::create(&db, 500, 8).unwrap();
            syn.random_updates(&db, 500 * (versions - 1), 1, 500, 42)
                .unwrap();
            db.checkpoint().unwrap();
            let mut rng = StdRng::seed_from_u64(7);
            g.bench_with_input(
                BenchmarkId::new(kind.to_string(), versions),
                &versions,
                |b, _| {
                    b.iter(|| {
                        let a = syn.atoms[rng.gen_range(0..syn.atoms.len())];
                        db.current_tuple(a, TimePoint(0)).unwrap()
                    })
                },
            );
            drop(db);
            cleanup(&dir);
        }
    }
    g.finish();
}

/// E2 — past time-slice at half history depth.
fn e2_past_timeslice(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_past_timeslice");
    g.sample_size(10)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(300));
    for kind in KINDS {
        let (db, dir) = fresh_db(&format!("cb-e2-{kind}"), kind, 1024);
        let syn = Synthetic::create(&db, 100, 8).unwrap();
        syn.uniform_history(&db, 63, 1, 42).unwrap();
        db.checkpoint().unwrap();
        let mid = TimePoint(db.now().0 / 2);
        let mut rng = StdRng::seed_from_u64(9);
        g.bench_function(kind.to_string(), |b| {
            b.iter(|| {
                let a = syn.atoms[rng.gen_range(0..syn.atoms.len())];
                db.versions_at(a, mid).unwrap()
            })
        });
        drop(db);
        cleanup(&dir);
    }
    g.finish();
}

/// E3 — update cost (one bitemporal update per iteration).
fn e3_update(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_update");
    g.sample_size(10)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(300));
    for kind in KINDS {
        let (db, dir) = fresh_db(&format!("cb-e3-{kind}"), kind, 4096);
        let syn = Synthetic::create(&db, 200, 8).unwrap();
        let mut round = 1i64;
        let mut rng = StdRng::seed_from_u64(3);
        g.bench_function(kind.to_string(), |b| {
            b.iter(|| {
                let idx = rng.gen_range(0..syn.atoms.len());
                let mut txn = db.begin();
                txn.update(
                    syn.atoms[idx],
                    Interval::all(),
                    Synthetic::wide_change_tuple(8, idx as i64, round, 1),
                )
                .unwrap();
                round += 1;
                txn.commit().unwrap()
            })
        });
        drop(db);
        cleanup(&dir);
    }
    g.finish();
}

/// E4/A1 — write amplification of wide tuples with narrow changes.
fn e4_wide_tuple_update(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_wide_tuple_update");
    g.sample_size(10)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(300));
    for kind in KINDS {
        let (db, dir) = fresh_db(&format!("cb-e4-{kind}"), kind, 4096);
        let syn = Synthetic::create(&db, 100, 64).unwrap();
        let mut round = 1i64;
        let mut rng = StdRng::seed_from_u64(3);
        g.bench_function(kind.to_string(), |b| {
            b.iter(|| {
                let idx = rng.gen_range(0..syn.atoms.len());
                let mut txn = db.begin();
                txn.update(
                    syn.atoms[idx],
                    Interval::all(),
                    Synthetic::wide_change_tuple(64, idx as i64, round, 1),
                )
                .unwrap();
                round += 1;
                txn.commit().unwrap()
            })
        });
        drop(db);
        cleanup(&dir);
    }
    g.finish();
}

/// E6 — full history retrieval (64 versions).
fn e6_history(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_history");
    g.sample_size(10)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(300));
    for kind in KINDS {
        let (db, dir) = fresh_db(&format!("cb-e6-{kind}"), kind, 1024);
        let syn = Synthetic::create(&db, 50, 8).unwrap();
        syn.uniform_history(&db, 63, 1, 42).unwrap();
        db.checkpoint().unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        g.bench_function(kind.to_string(), |b| {
            b.iter(|| {
                let a = syn.atoms[rng.gen_range(0..syn.atoms.len())];
                db.history(a).unwrap()
            })
        });
        drop(db);
        cleanup(&dir);
    }
    g.finish();
}

criterion_group!(
    benches,
    e1_current_lookup,
    e2_past_timeslice,
    e3_update,
    e4_wide_tuple_update,
    e6_history
);
criterion_main!(benches);
