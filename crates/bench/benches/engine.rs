//! Criterion benches for the engine-level experiments:
//! E9 (buffer sensitivity) and E11 (recovery / checkpoint cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::prelude::*;
use std::time::Duration;
use tcom_bench::workloads::{cleanup, fresh_db, reopen_db, Synthetic};
use tcom_core::{StoreKind, TimePoint};

/// E9 — random current lookups under varying buffer sizes.
fn e9_buffer_sensitivity(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_buffer_sensitivity");
    g.sample_size(10)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(300));
    let (db, dir) = fresh_db("cb-e9", StoreKind::Chain, 4096);
    let syn = Synthetic::create(&db, 1500, 8).unwrap();
    syn.random_updates(&db, 1500 * 8, 1, 500, 42).unwrap();
    let atoms = syn.atoms.clone();
    drop(syn);
    drop(db);
    for frames in [16usize, 256, 4096] {
        let db = reopen_db(&dir, StoreKind::Chain, frames);
        let mut rng = StdRng::seed_from_u64(5);
        g.bench_with_input(BenchmarkId::new("frames", frames), &frames, |b, _| {
            b.iter(|| {
                let a = atoms[rng.gen_range(0..atoms.len())];
                db.current_tuple(a, TimePoint(0)).unwrap()
            })
        });
    }
    cleanup(&dir);
    g.finish();
}

/// E11 — recovery time after a crash with a populated WAL.
fn e11_recovery(c: &mut Criterion) {
    let mut g = c.benchmark_group("e11_recovery");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for ops in [500usize, 5000] {
        g.bench_with_input(BenchmarkId::new("ops", ops), &ops, |b, &ops| {
            b.iter_with_setup(
                || {
                    // Setup: a crashed database with `ops` logged operations.
                    let (db, dir) = fresh_db(
                        &format!("cb-e11-{ops}-{}", rand::random::<u32>()),
                        StoreKind::Split,
                        4096,
                    );
                    let syn = Synthetic::create(&db, 100, 8).unwrap();
                    db.checkpoint().unwrap();
                    syn.random_updates(&db, ops, 1, 500, 42).unwrap();
                    db.crash();
                    dir
                },
                |dir| {
                    let db = reopen_db(&dir, StoreKind::Split, 4096);
                    drop(db);
                    cleanup(&dir);
                },
            )
        });
    }
    g.finish();
}

criterion_group!(benches, e9_buffer_sensitivity, e11_recovery);
criterion_main!(benches);
