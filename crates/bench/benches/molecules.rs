//! Criterion benches for the complex-object experiments:
//! E5 (molecule time-slice) and E10 (recursive BOM explosion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tcom_bench::workloads::{cleanup, fresh_db, Bom, University};
use tcom_core::{StoreKind, TimePoint};

/// E5 — molecule materialization vs. fan-out, current and past.
fn e5_molecule_timeslice(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_molecule_timeslice");
    g.sample_size(10)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(300));
    for emps in [2usize, 8, 32] {
        let (db, dir) = fresh_db(&format!("cb-e5-{emps}"), StoreKind::Split, 2048);
        let uni = University::create(&db, 5, emps, 3, 42).unwrap();
        let past_tt = db.now();
        uni.churn(&db, 3, 7).unwrap();
        db.checkpoint().unwrap();
        let now = db.now();
        g.bench_with_input(BenchmarkId::new("current", emps), &emps, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                i += 1;
                db.materialize(uni.mol, uni.depts[i % uni.depts.len()], now, TimePoint(0))
                    .unwrap()
            })
        });
        g.bench_with_input(BenchmarkId::new("past", emps), &emps, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                i += 1;
                db.materialize(
                    uni.mol,
                    uni.depts[i % uni.depts.len()],
                    past_tt,
                    TimePoint(0),
                )
                .unwrap()
            })
        });
        drop(db);
        cleanup(&dir);
    }
    g.finish();
}

/// E10 — BOM explosion vs. depth (fan-out 3).
fn e10_bom_explosion(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_bom_explosion");
    g.sample_size(10)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(300));
    for depth in [2usize, 4, 6] {
        let (db, dir) = fresh_db(&format!("cb-e10-{depth}"), StoreKind::Split, 4096);
        let bom = Bom::create(&db, 1, 3, depth).unwrap();
        bom.engineering_changes(&db, 50, 13).unwrap();
        db.checkpoint().unwrap();
        let now = db.now();
        g.bench_with_input(BenchmarkId::new("depth", depth), &depth, |b, _| {
            b.iter(|| {
                db.materialize(bom.mol, bom.roots[0], now, TimePoint(0))
                    .unwrap()
            })
        });
        drop(db);
        cleanup(&dir);
    }
    g.finish();
}

criterion_group!(benches, e5_molecule_timeslice, e10_bom_explosion);
criterion_main!(benches);
