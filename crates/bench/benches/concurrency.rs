//! Criterion benches for the sharded buffer pool (E13 companion):
//! multi-threaded pool-resident fetch throughput at 1 vs. auto shards,
//! and parallel molecule materialization at 1/2/4/8 threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;
use tcom_bench::workloads::{bench_config, cleanup, fresh_db_with, University};
use tcom_core::{StoreKind, TimePoint};
use tcom_storage::buffer::BufferPool;
use tcom_storage::disk::DiskManager;
use tcom_storage::page::PageKind;

/// Raw pool fetch throughput: 4 threads hammering pool-resident pages,
/// single-shard (the old single-mutex design) vs. auto-sharded.
fn pool_fetch_parallel(c: &mut Criterion) {
    let mut g = c.benchmark_group("pool_fetch_parallel");
    g.sample_size(10)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(300));
    const THREADS: usize = 4;
    const PAGES: usize = 512;
    const FETCHES_PER_THREAD: usize = 2_000;
    for shards in [1usize, 0] {
        let path =
            std::env::temp_dir().join(format!("tcom-cb-pool-{}-{shards}.tcm", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let dm = Arc::new(DiskManager::open(&path).unwrap());
        let pool = BufferPool::with_shards(1024, shards, true);
        let file = pool.register_file(dm);
        let mut pids = Vec::with_capacity(PAGES);
        for i in 0..PAGES {
            let (pid, mut p) = pool.create(file, PageKind::Slotted).unwrap();
            p.write_u64(64, i as u64);
            pids.push(pid);
        }
        pool.flush_all().unwrap();
        let label = if shards == 1 { "1-shard" } else { "sharded" };
        g.bench_with_input(BenchmarkId::new(label, THREADS), &THREADS, |b, _| {
            b.iter(|| {
                std::thread::scope(|s| {
                    for t in 0..THREADS {
                        let pool = &pool;
                        let pids = &pids;
                        s.spawn(move || {
                            let mut k = t * 37;
                            for _ in 0..FETCHES_PER_THREAD {
                                k = (k * 31 + 17) % pids.len();
                                let pg = pool.fetch_read(file, pids[k]).unwrap();
                                std::hint::black_box(pg.read_u64(64));
                            }
                        });
                    }
                })
            })
        });
        let _ = std::fs::remove_file(&path);
    }
    g.finish();
}

/// E13 — parallel molecule materialization scaling.
fn e13_parallel_materialization(c: &mut Criterion) {
    let mut g = c.benchmark_group("e13_parallel_materialization");
    g.sample_size(10)
        .measurement_time(Duration::from_millis(1200))
        .warm_up_time(Duration::from_millis(400));
    let (db, dir) = fresh_db_with("cb-e13", bench_config(StoreKind::Split, 4096));
    let uni = University::create(&db, 48, 8, 4, 42).unwrap();
    db.checkpoint().unwrap();
    let now = db.now();
    // Warm the pool.
    let warm = db
        .materialize_all_parallel(uni.mol, now, TimePoint(0), 4)
        .unwrap();
    assert_eq!(warm.len(), 48);
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    db.materialize_all_parallel(uni.mol, now, TimePoint(0), threads)
                        .unwrap()
                })
            },
        );
    }
    drop(db);
    cleanup(&dir);
    g.finish();
}

criterion_group!(benches, pool_fetch_parallel, e13_parallel_materialization);
criterion_main!(benches);
