//! Criterion benches for E12 — temporal algebra micro-operations — plus
//! the kernel temporal-element primitives they are built from.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::prelude::*;
use std::time::Duration;
use tcom_core::algebra::{
    coalesce, temporal_difference, temporal_join, TemporalRelation, TemporalRow,
};
use tcom_kernel::time::iv;
use tcom_kernel::{TemporalElement, Tuple, Value};

fn random_relation(n: usize, distinct: usize, seed: u64) -> TemporalRelation {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let s = rng.gen_range(0..1000u64);
            TemporalRow {
                tuple: Tuple::new(vec![Value::Int((i % distinct) as i64)]),
                time: TemporalElement::from_intervals([iv(s, s + rng.gen_range(1..100))]),
            }
        })
        .collect()
}

/// E12 — relation-level operators.
fn e12_algebra(c: &mut Criterion) {
    let mut g = c.benchmark_group("e12_algebra");
    g.sample_size(10)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(300));
    for n in [1000usize, 10_000] {
        let rel = random_relation(n, (n / 4).max(1), 21);
        let other: TemporalRelation = rel.iter().take(n / 2).cloned().collect();
        g.bench_with_input(BenchmarkId::new("coalesce", n), &n, |b, _| {
            b.iter(|| coalesce(rel.clone()))
        });
        g.bench_with_input(BenchmarkId::new("join", n), &n, |b, _| {
            b.iter(|| temporal_join(&rel, &other, |t| t.get(0).clone(), |t| t.get(0).clone()))
        });
        g.bench_with_input(BenchmarkId::new("difference", n), &n, |b, _| {
            b.iter(|| temporal_difference(rel.clone(), &other))
        });
    }
    g.finish();
}

/// Kernel micro-ops: temporal-element set algebra.
fn temporal_element_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("temporal_element_ops");
    g.sample_size(10)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(300));
    let mut rng = StdRng::seed_from_u64(33);
    let gen_elem = |rng: &mut StdRng, n: usize| {
        TemporalElement::from_intervals((0..n).map(|_| {
            let s = rng.gen_range(0..100_000u64);
            iv(s, s + rng.gen_range(1..50))
        }))
    };
    let a = gen_elem(&mut rng, 500);
    let b = gen_elem(&mut rng, 500);
    g.bench_function("union_500", |bch| bch.iter(|| a.union(&b)));
    g.bench_function("intersect_500", |bch| bch.iter(|| a.intersect(&b)));
    g.bench_function("difference_500", |bch| bch.iter(|| a.difference(&b)));
    g.finish();
}

criterion_group!(benches, e12_algebra, temporal_element_ops);
criterion_main!(benches);
