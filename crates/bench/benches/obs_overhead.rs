//! Observability overhead budget: the parallel pool-fetch workload (same
//! shape as the `pool_fetch_parallel` bench) run bare, then with the
//! engine's instrumentation pattern, then with deliberately worst-case
//! per-fetch instrumentation.
//!
//! The engine's default state is the `noop` variant: pool hot-path
//! counters are *polled gauges* (zero added cost on the fetch path),
//! spans wrap multi-page operations (one per batch here, as
//! `molecule.materialize` wraps a whole traversal), and the registry has
//! no span sink attached. That variant carries the < 2% overhead budget;
//! `span-per-fetch` and `recording` quantify the floor of finer-grained
//! instrumentation. Measured numbers are recorded in DESIGN.md §8.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;
use tcom_core::{Registry, RingRecorder};
use tcom_storage::buffer::BufferPool;
use tcom_storage::disk::DiskManager;
use tcom_storage::page::PageKind;

const THREADS: usize = 4;
const PAGES: usize = 512;
const FETCHES_PER_THREAD: usize = 2_000;

struct Fixture {
    pool: Arc<BufferPool>,
    file: tcom_storage::buffer::FileId,
    pids: Vec<tcom_kernel::PageId>,
    path: std::path::PathBuf,
}

fn fixture(tag: &str) -> Fixture {
    let path = std::env::temp_dir().join(format!("tcom-obs-ov-{}-{tag}.tcm", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let dm = Arc::new(DiskManager::open(&path).unwrap());
    let pool = BufferPool::with_shards(1024, 0, true);
    let file = pool.register_file(dm);
    let mut pids = Vec::with_capacity(PAGES);
    for i in 0..PAGES {
        let (pid, mut p) = pool.create(file, PageKind::Slotted).unwrap();
        p.write_u64(64, i as u64);
        pids.push(pid);
    }
    pool.flush_all().unwrap();
    Fixture {
        pool,
        file,
        pids,
        path,
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Instrumentation {
    /// No registry in sight.
    Bare,
    /// The engine pattern: one span per thread-batch, one counter add per
    /// batch; per-fetch accounting stays in the pool's own atomics, which
    /// the registry reads as gauges at snapshot time.
    PerBatch,
    /// Worst case: a span (and counter increment) around every fetch.
    PerFetch,
}

/// One full workload round: `THREADS` threads, each fetching
/// `FETCHES_PER_THREAD` pool-resident pages.
fn round(fx: &Fixture, reg: Option<&Registry>, gran: Instrumentation) {
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let pool = &fx.pool;
            let pids = &fx.pids;
            let file = fx.file;
            let ctr = reg.map(|r| r.counter("bench.fetches", ""));
            s.spawn(move || {
                let _batch_span = match (reg, gran) {
                    (Some(r), Instrumentation::PerBatch) => Some(r.span("bench.batch")),
                    _ => None,
                };
                let mut k = t * 37;
                for _ in 0..FETCHES_PER_THREAD {
                    k = (k * 31 + 17) % pids.len();
                    let _span = match (reg, gran) {
                        (Some(r), Instrumentation::PerFetch) => Some(r.span("bench.fetch")),
                        _ => None,
                    };
                    let pg = pool.fetch_read(file, pids[k]).unwrap();
                    std::hint::black_box(pg.read_u64(64));
                    if gran == Instrumentation::PerFetch {
                        if let Some(c) = &ctr {
                            c.inc();
                        }
                    }
                }
                if gran == Instrumentation::PerBatch {
                    if let Some(c) = &ctr {
                        c.add(FETCHES_PER_THREAD as u64);
                    }
                }
            });
        }
    })
}

fn obs_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_overhead");
    g.sample_size(20)
        .measurement_time(Duration::from_millis(1500))
        .warm_up_time(Duration::from_millis(400));

    // Bare workload: the baseline.
    let fx = fixture("bare");
    g.bench_with_input(BenchmarkId::new("bare", THREADS), &THREADS, |b, _| {
        b.iter(|| round(&fx, None, Instrumentation::Bare))
    });
    let _ = std::fs::remove_file(&fx.path);

    // Engine-default no-op instrumentation; this is the < 2% budget.
    let fx = fixture("noop");
    let reg = Registry::new();
    g.bench_with_input(BenchmarkId::new("noop", THREADS), &THREADS, |b, _| {
        b.iter(|| round(&fx, Some(&reg), Instrumentation::PerBatch))
    });
    let _ = std::fs::remove_file(&fx.path);

    // Worst case with no sink: span + shared counter on every fetch.
    let fx = fixture("span-per-fetch");
    let reg = Registry::new();
    g.bench_with_input(
        BenchmarkId::new("span-per-fetch", THREADS),
        &THREADS,
        |b, _| b.iter(|| round(&fx, Some(&reg), Instrumentation::PerFetch)),
    );
    let _ = std::fs::remove_file(&fx.path);

    // Worst case with a ring-buffer span sink attached and timing live.
    let fx = fixture("recording");
    let reg = Registry::new();
    reg.set_span_sink(Some(Arc::new(RingRecorder::new(4096))));
    g.bench_with_input(BenchmarkId::new("recording", THREADS), &THREADS, |b, _| {
        b.iter(|| round(&fx, Some(&reg), Instrumentation::PerFetch))
    });
    let _ = std::fs::remove_file(&fx.path);

    g.finish();
}

criterion_group!(benches, obs_overhead);
criterion_main!(benches);
