//! Criterion benches for the query-processing experiments:
//! E7 (index vs scan), E8 (bitemporal matrix) and A2 (directory ablation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::prelude::*;
use std::sync::Arc;
use std::time::Duration;
use tcom_bench::workloads::{cleanup, fresh_db, Synthetic, University};
use tcom_core::{StoreKind, TimePoint};
use tcom_query::{execute_with, ExecOptions};

/// E7 — selective predicate: index probe vs full scan.
fn e7_access_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_access_paths");
    g.sample_size(10)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(300));
    let (db, dir) = fresh_db("cb-e7", StoreKind::Split, 4096);
    let _syn = Synthetic::create(&db, 5000, 8).unwrap();
    db.checkpoint().unwrap();
    for pct in [0.1f64, 1.0, 10.0] {
        let hi = (5000.0 * pct / 100.0).max(1.0) as i64;
        let q = format!("SELECT a0 FROM syn WHERE a0 < {hi}");
        g.bench_with_input(BenchmarkId::new("index", format!("{pct}%")), &q, |b, q| {
            b.iter(|| execute_with(&db, q, ExecOptions::default()).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("scan", format!("{pct}%")), &q, |b, q| {
            b.iter(|| {
                execute_with(
                    &db,
                    q,
                    ExecOptions {
                        force_scan: true,
                        ..Default::default()
                    },
                )
                .unwrap()
            })
        });
    }
    drop(db);
    cleanup(&dir);
    g.finish();
}

/// E8 — the four bitemporal point-query combinations.
fn e8_bitemporal_matrix(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_bitemporal_matrix");
    g.sample_size(10)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(300));
    let (db, dir) = fresh_db("cb-e8", StoreKind::Split, 2048);
    let uni = University::create(&db, 10, 10, 2, 42).unwrap();
    {
        let mut txn = db.begin();
        for (i, e) in uni.emps.iter().enumerate() {
            let mut tup = txn.current_tuple(*e, TimePoint(0)).unwrap().unwrap();
            tup.set(1, tcom_core::Value::Int(1000 + i as i64));
            txn.update(*e, tcom_kernel::Interval::from_start(TimePoint(100)), tup)
                .unwrap();
        }
        txn.commit().unwrap();
    }
    let past_tt = db.now();
    uni.churn(&db, 3, 7).unwrap();
    db.checkpoint().unwrap();
    let mut rng = StdRng::seed_from_u64(11);
    let cases: [(&str, Option<TimePoint>, TimePoint); 4] = [
        ("cur_tt_cur_vt", None, TimePoint(150)),
        ("cur_tt_past_vt", None, TimePoint(50)),
        ("past_tt_cur_vt", Some(past_tt), TimePoint(150)),
        ("past_tt_past_vt", Some(past_tt), TimePoint(50)),
    ];
    for (name, tt, vt) in cases {
        g.bench_function(name, |b| {
            b.iter(|| {
                let e = uni.emps[rng.gen_range(0..uni.emps.len())];
                match tt {
                    None => db.current_tuple(e, vt).unwrap(),
                    Some(tt) => db.version_at(e, tt, vt).unwrap().map(|v| v.tuple),
                }
            })
        });
    }
    drop(db);
    cleanup(&dir);
    g.finish();
}

/// A2 — atom lookup through the B⁺-tree directory vs a heap scan.
fn a2_directory(c: &mut Criterion) {
    use tcom_storage::btree::BTree;
    use tcom_storage::keys::BKey;
    use tcom_storage::{BufferPool, DiskManager, HeapFile};
    let mut g = c.benchmark_group("a2_directory");
    g.sample_size(10)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(300));
    let dir = std::env::temp_dir().join(format!("tcom-cb-a2-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let pool = BufferPool::new(4096);
    let hf = pool.register_file(Arc::new(DiskManager::open(dir.join("h.tcm")).unwrap()));
    let bf = pool.register_file(Arc::new(DiskManager::open(dir.join("b.tcm")).unwrap()));
    let heap = HeapFile::create(pool.clone(), hf).unwrap();
    let tree = BTree::create(pool, bf).unwrap();
    let n = 5000u64;
    for i in 0..n {
        let mut rec = i.to_le_bytes().to_vec();
        rec.extend_from_slice(&[7u8; 40]);
        let rid = heap.insert(&rec).unwrap();
        tree.insert(BKey::new(i, 0), rid.pack()).unwrap();
    }
    let mut rng = StdRng::seed_from_u64(17);
    g.bench_function("btree_directory", |b| {
        b.iter(|| tree.get(BKey::new(rng.gen_range(0..n), 0)).unwrap())
    });
    g.bench_function("heap_scan", |b| {
        b.iter(|| {
            let k = rng.gen_range(0..n);
            let mut found = None;
            heap.scan(|rid, rec| {
                if rec.len() >= 8 && u64::from_le_bytes(rec[..8].try_into().unwrap()) == k {
                    found = Some(rid);
                    return Ok(false);
                }
                Ok(true)
            })
            .unwrap();
            found
        })
    });
    let _ = std::fs::remove_dir_all(&dir);
    g.finish();
}

criterion_group!(benches, e7_access_paths, e8_bitemporal_matrix, a2_directory);
criterion_main!(benches);
