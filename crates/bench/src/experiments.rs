//! The reconstructed evaluation: one function per experiment, each
//! returning a printable [`Table`]. See EXPERIMENTS.md for the mapping to
//! the paper's evaluation dimensions and the recorded results.

use crate::measure::{bytes, time_batch, time_each, us, Table, Timing};
use crate::workloads::{cleanup, fresh_db, reopen_db, Bom, Synthetic, University};
use rand::prelude::*;
use tcom_core::{Database, StoreKind, TimePoint};
use tcom_kernel::time::Interval;
use tcom_query::{execute_with, prepare, AccessPath, ExecOptions};

const KINDS: [StoreKind; 3] = [StoreKind::Chain, StoreKind::Delta, StoreKind::Split];

/// Scale factor: 1 = full (the recorded EXPERIMENTS.md numbers),
/// smaller = quicker smoke runs.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Divides atom counts / update counts.
    pub div: usize,
}

impl Scale {
    /// Full scale.
    pub fn full() -> Scale {
        Scale { div: 1 }
    }

    /// Quick smoke-test scale.
    pub fn quick() -> Scale {
        Scale { div: 8 }
    }

    /// Scales a full-size count down for quick runs (floor 8).
    pub fn n(&self, full: usize) -> usize {
        (full / self.div).max(8)
    }
}

/// E1 — current-version access vs. history length.
pub fn e1_current_access(s: Scale) -> Table {
    let mut t = Table::new(
        "E1",
        "current access vs history length (lookup µs / scan ms / hit%)",
        &["store", "vers/atom", "lookup µs", "scan ms", "hit %"],
        "split stays flat as histories grow; chain & delta current access degrades \
         (old versions share pages with current ones)",
    );
    let n_atoms = s.n(2000);
    let mut final_metrics = None;
    for kind in KINDS {
        for versions in [0usize, 4, 16, 64] {
            let (db, dir) = fresh_db(&format!("e1-{kind}-{versions}"), kind, 256);
            let syn = Synthetic::create(&db, n_atoms, 8).expect("load");
            syn.random_updates(&db, n_atoms * versions, 1, 500, 42)
                .expect("updates");
            db.checkpoint().expect("ckpt");

            // Random current lookups; I/O accounting via the metrics
            // registry (pool counters exported as gauges).
            let mut rng = StdRng::seed_from_u64(7);
            let before = db.metrics();
            let lookups = time_each(s.n(2000), |_| {
                let a = syn.atoms[rng.gen_range(0..syn.atoms.len())];
                db.current_tuple(a, TimePoint(0)).expect("lookup")
            });
            let d = db.metrics().delta(&before);
            let (hits, misses) = (d.counter("pool.hits"), d.counter("pool.misses"));
            let hit = 100.0 * hits as f64 / (hits + misses).max(1) as f64;

            // Full current-state scan.
            let scan = time_batch(1, || {
                let mut n = 0usize;
                db.scan_current(syn.ty, TimePoint(0), |_, _| {
                    n += 1;
                    Ok(true)
                })
                .expect("scan");
                n
            });

            t.row(vec![
                kind.to_string(),
                format!("{}", versions + 1),
                format!("{:.1}", lookups.mean_us),
                format!("{:.1}", scan.mean_us / 1000.0),
                format!("{hit:.1}"),
            ]);
            final_metrics = Some(metrics_json(&db.metrics()));
            cleanup(&dir);
        }
    }
    if let Some(m) = final_metrics {
        t.set_metrics(m);
    }
    t
}

/// E2 — past time-slice cost vs. position in history.
pub fn e2_past_timeslice(s: Scale) -> Table {
    let mut t = Table::new(
        "E2",
        "past time-slice latency vs slice depth (µs)",
        &["store", "25% back", "50% back", "75% back", "oldest"],
        "split's cost grows with distance into the past (its history chain is \
         ordered by closing time and exits early); chain and delta pay the full \
         chain walk at any depth, delta additionally the delta replay",
    );
    let n_atoms = s.n(200);
    let rounds = s.n(128);
    for kind in KINDS {
        let (db, dir) = fresh_db(&format!("e2-{kind}"), kind, 1024);
        let syn = Synthetic::create(&db, n_atoms, 8).expect("load");
        syn.uniform_history(&db, rounds, 1, 42).expect("history");
        db.checkpoint().expect("ckpt");
        let now = db.now().0;
        let mut cells = vec![kind.to_string()];
        for frac in [0.75, 0.5, 0.25, 0.0] {
            // frac = fraction of history *kept* (1.0 = now); slice tt.
            let tt = TimePoint(((now as f64) * frac).max(2.0) as u64);
            let mut rng = StdRng::seed_from_u64(9);
            let timing = time_each(s.n(400), |_| {
                let a = syn.atoms[rng.gen_range(0..syn.atoms.len())];
                db.versions_at(a, tt).expect("slice")
            });
            cells.push(format!("{:.1}", timing.mean_us));
        }
        t.row(cells);
        cleanup(&dir);
    }
    t
}

/// E3 — DML cost per storage format vs. a non-temporal baseline.
pub fn e3_update_cost(s: Scale) -> Table {
    let mut t = Table::new(
        "E3",
        "DML throughput (ops/s, batches of 100 per txn)",
        &["store", "insert", "update", "logical delete"],
        "versioned DML pays an order of magnitude over raw in-place heap writes \
         (WAL, planning, version bookkeeping); among the temporal formats, chain \
         is cheapest on writes (blind append), delta pays compression, split \
         pays the history move",
    );
    let n = s.n(2000);
    for kind in KINDS {
        let (db, dir) = fresh_db(&format!("e3-{kind}"), kind, 2048);
        let syn = Synthetic::create(&db, 8, 8).expect("schema");
        let ty = syn.ty;
        // Inserts.
        let ins = time_batch(n, || {
            for chunk in (0..n).collect::<Vec<_>>().chunks(100) {
                let mut txn = db.begin();
                for &i in chunk {
                    txn.insert_atom(
                        ty,
                        Interval::all(),
                        Synthetic::tuple_of(8, i as i64 + 100, 0),
                    )
                    .expect("insert");
                }
                txn.commit().expect("commit");
            }
        });
        let atoms = db.all_atoms(ty).expect("atoms");
        // Updates.
        let upd = time_batch(n, || {
            let mut r = 1i64;
            for chunk in atoms.chunks(100).cycle().take(n / 100) {
                let mut txn = db.begin();
                for a in chunk {
                    txn.update(
                        *a,
                        Interval::all(),
                        Synthetic::tuple_of(8, a.no.0 as i64, r),
                    )
                    .expect("update");
                    r += 1;
                }
                txn.commit().expect("commit");
            }
        });
        // Logical deletes (half the atoms).
        let del_n = atoms.len() / 2;
        let del = time_batch(del_n, || {
            for chunk in atoms[..del_n].chunks(100) {
                let mut txn = db.begin();
                for a in chunk {
                    txn.delete(*a, Interval::all()).expect("delete");
                }
                txn.commit().expect("commit");
            }
        });
        t.row(vec![
            kind.to_string(),
            format!("{:.0}", ins.ops_per_sec()),
            format!("{:.0}", upd.ops_per_sec()),
            format!("{:.0}", del.ops_per_sec()),
        ]);
        cleanup(&dir);
    }
    // Non-temporal baseline: raw heap-file records, overwrite in place.
    {
        use std::sync::Arc;
        use tcom_storage::{BufferPool, DiskManager, HeapFile};
        let dir = std::env::temp_dir().join(format!("tcom-bench-{}-e3-base", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let pool = BufferPool::new(2048);
        let file = pool.register_file(Arc::new(
            DiskManager::open(dir.join("base.tcm")).expect("dm"),
        ));
        let heap = HeapFile::create(pool, file).expect("heap");
        let rec: Vec<u8> = (0..80u8).collect();
        let ins = time_batch(n, || {
            for _ in 0..n {
                heap.insert(&rec).expect("insert");
            }
        });
        let mut rids = Vec::new();
        heap.scan(|rid, _| {
            rids.push(rid);
            Ok(true)
        })
        .expect("scan");
        let upd = time_batch(n, || {
            for i in 0..n {
                heap.update(rids[i % rids.len()], &rec).expect("update");
            }
        });
        let del = time_batch(rids.len() / 2, || {
            for rid in &rids[..rids.len() / 2] {
                heap.delete(*rid).expect("delete");
            }
        });
        t.row(vec![
            "non-temporal".into(),
            format!("{:.0}", ins.ops_per_sec()),
            format!("{:.0}", upd.ops_per_sec()),
            format!("{:.0}", del.ops_per_sec()),
        ]);
        let _ = std::fs::remove_dir_all(&dir);
    }
    t
}

/// E4 — storage consumption vs. tuple width (narrow updates).
pub fn e4_storage_consumption(s: Scale) -> Table {
    let mut t = Table::new(
        "E4",
        "storage after 16 single-attribute updates/atom",
        &["store", "width", "bytes", "pages", "bytes/version"],
        "delta shrinks with tuple width (only the changed attribute is kept); \
         chain and split grow linearly with width × versions",
    );
    let n_atoms = s.n(500);
    for kind in KINDS {
        for width in [4usize, 16, 64] {
            let (db, dir) = fresh_db(&format!("e4-{kind}-{width}"), kind, 2048);
            let syn = Synthetic::create(&db, n_atoms, width).expect("load");
            syn.uniform_history(&db, 16, 1, 42).expect("history");
            db.checkpoint().expect("ckpt");
            let stats = db.store_stats().expect("stats");
            let st = &stats[0].1;
            t.row(vec![
                kind.to_string(),
                format!("{width}"),
                bytes(st.record_bytes),
                format!("{}", st.heap_pages),
                format!("{}", st.record_bytes / st.versions.max(1)),
            ]);
            cleanup(&dir);
        }
    }
    t
}

/// E5 — molecule time-slice latency vs. molecule size.
pub fn e5_molecule_timeslice(s: Scale) -> Table {
    let mut t = Table::new(
        "E5",
        "molecule materialization (µs) vs molecule size, current and past",
        &["emps/dept", "molecule size", "current µs", "past µs"],
        "latency grows linearly with molecule size; past slices cost a small \
         constant factor over current ones (history walks per member atom)",
    );
    for emps in [2usize, 8, 32] {
        let (db, dir) = fresh_db(&format!("e5-{emps}"), StoreKind::Split, 2048);
        let uni = University::create(&db, s.n(20).min(20), emps, 3, 42).expect("uni");
        let past_tt = db.now();
        uni.churn(&db, 5, 7).expect("churn");
        db.checkpoint().expect("ckpt");
        let now = db.now();
        let mut size = 0usize;
        let cur = time_each(uni.depts.len().min(50), |i| {
            let m = db
                .materialize(uni.mol, uni.depts[i % uni.depts.len()], now, TimePoint(0))
                .expect("mat")
                .expect("visible");
            size = size.max(m.size());
            m
        });
        let past = time_each(uni.depts.len().min(50), |i| {
            db.materialize(
                uni.mol,
                uni.depts[i % uni.depts.len()],
                past_tt,
                TimePoint(0),
            )
            .expect("mat")
        });
        t.row(vec![
            format!("{emps}"),
            format!("{size}"),
            format!("{:.1}", cur.mean_us),
            format!("{:.1}", past.mean_us),
        ]);
        cleanup(&dir);
    }
    t
}

/// E6 — history-query cost vs. history length.
pub fn e6_history_query(s: Scale) -> Table {
    let mut t = Table::new(
        "E6",
        "full history retrieval latency (µs) vs history length",
        &["store", "4", "16", "64", "256"],
        "linear in history length for every format; delta steepest (replay), \
         split flat-start (current read) plus the history chain",
    );
    for kind in KINDS {
        let mut cells = vec![kind.to_string()];
        for versions in [4usize, 16, 64, 256] {
            let n_atoms = s.n(100);
            let (db, dir) = fresh_db(&format!("e6-{kind}-{versions}"), kind, 2048);
            let syn = Synthetic::create(&db, n_atoms, 8).expect("load");
            syn.uniform_history(&db, versions - 1, 1, 42)
                .expect("history");
            db.checkpoint().expect("ckpt");
            let mut rng = StdRng::seed_from_u64(3);
            let timing = time_each(s.n(200), |_| {
                let a = syn.atoms[rng.gen_range(0..syn.atoms.len())];
                db.history(a).expect("history")
            });
            cells.push(format!("{:.1}", timing.mean_us));
            cleanup(&dir);
        }
        t.row(cells);
    }
    t
}

/// E7 — access-path selection: index probe vs. directory scan.
pub fn e7_access_paths(s: Scale) -> Table {
    let mut t = Table::new(
        "E7",
        "selective predicate latency: value index vs full scan",
        &["selectivity", "rows", "index µs", "scan µs", "speedup"],
        "index wins by orders of magnitude at low selectivity; advantage shrinks \
         as selectivity approaches a full scan",
    );
    let n = s.n(20_000);
    let (db, dir) = fresh_db("e7", StoreKind::Split, 4096);
    let syn = Synthetic::create(&db, n, 8).expect("load");
    db.checkpoint().expect("ckpt");
    for pct in [0.01f64, 0.1, 1.0, 10.0] {
        let hi = ((n as f64) * pct / 100.0).max(1.0) as i64;
        let q = format!("SELECT a0 FROM syn WHERE a0 < {hi}");
        let p = prepare(&db, &q).expect("prepare");
        assert!(matches!(p.access, AccessPath::IndexRange { .. }));
        let via_index = time_each(10, |_| {
            execute_with(&db, &q, ExecOptions::default()).expect("q")
        });
        let via_scan = time_each(5, |_| {
            execute_with(
                &db,
                &q,
                ExecOptions {
                    force_scan: true,
                    ..Default::default()
                },
            )
            .expect("q")
        });
        let rows = execute_with(&db, &q, ExecOptions::default())
            .expect("q")
            .len();
        t.row(vec![
            format!("{pct}%"),
            format!("{rows}"),
            us(via_index.mean_us),
            us(via_scan.mean_us),
            format!("{:.1}×", via_scan.mean_us / via_index.mean_us.max(0.001)),
        ]);
    }
    let _ = syn;
    cleanup(&dir);
    t
}

/// E8 — the bitemporal query matrix.
pub fn e8_bitemporal_matrix(s: Scale) -> Table {
    let mut t = Table::new(
        "E8",
        "bitemporal point-query latency matrix (µs, mean over employees)",
        &["tt \\ vt", "current vt", "past vt"],
        "current/current is the cheapest cell; past transaction time dominates \
         the cost (history access), past valid time adds only slice filtering",
    );
    let (db, dir) = fresh_db("e8", StoreKind::Split, 2048);
    let uni = University::create(&db, s.n(20).min(20), 10, 2, 42).expect("uni");
    // Give employees valid-time structure: salary differs per vt period.
    {
        let mut txn = db.begin();
        for (i, e) in uni.emps.iter().enumerate() {
            let mut tup = txn
                .current_tuple(*e, TimePoint(0))
                .expect("t")
                .expect("cur");
            tup.set(1, tcom_core::Value::Int(1000 + i as i64));
            // Salary raise valid from time 100 on.
            txn.update(*e, Interval::from_start(TimePoint(100)), tup)
                .expect("upd");
        }
        txn.commit().expect("commit");
    }
    let past_tt = db.now();
    uni.churn(&db, 5, 7).expect("churn");
    db.checkpoint().expect("ckpt");

    let mut rng = StdRng::seed_from_u64(11);
    let mut measure = |tt: Option<TimePoint>, vt: TimePoint| -> Timing {
        time_each(s.n(1000), |_| {
            let e = uni.emps[rng.gen_range(0..uni.emps.len())];
            match tt {
                None => db.current_tuple(e, vt).expect("q"),
                Some(tt) => db.version_at(e, tt, vt).expect("q").map(|v| v.tuple),
            }
        })
    };
    let cc = measure(None, TimePoint(150));
    let cp = measure(None, TimePoint(50));
    let pc = measure(Some(past_tt), TimePoint(150));
    let pp = measure(Some(past_tt), TimePoint(50));
    t.row(vec![
        "current tt".into(),
        format!("{:.1}", cc.mean_us),
        format!("{:.1}", cp.mean_us),
    ]);
    t.row(vec![
        "past tt".into(),
        format!("{:.1}", pc.mean_us),
        format!("{:.1}", pp.mean_us),
    ]);
    cleanup(&dir);
    t
}

/// E9 — buffer-size sensitivity.
pub fn e9_buffer_sensitivity(s: Scale) -> Table {
    let mut t = Table::new(
        "E9",
        "random current lookups vs buffer size (chain store)",
        &["frames", "hit %", "lookup µs"],
        "hit ratio climbs with pool size until the working set fits, then \
         latency collapses to the in-memory cost",
    );
    let n_atoms = s.n(4000);
    let (db, dir) = fresh_db("e9", StoreKind::Chain, 4096);
    let syn = Synthetic::create(&db, n_atoms, 8).expect("load");
    syn.random_updates(&db, n_atoms * 8, 1, 500, 42)
        .expect("updates");
    let atoms = syn.atoms.clone();
    drop(syn);
    drop(db);
    for frames in [16usize, 64, 256, 1024, 4096] {
        let db = reopen_db(&dir, StoreKind::Chain, frames);
        let mut rng = StdRng::seed_from_u64(5);
        // Warm up, then measure.
        for _ in 0..s.n(500) {
            let a = atoms[rng.gen_range(0..atoms.len())];
            db.current_tuple(a, TimePoint(0)).expect("warm");
        }
        let before = db.metrics();
        let timing = time_each(s.n(2000), |_| {
            let a = atoms[rng.gen_range(0..atoms.len())];
            db.current_tuple(a, TimePoint(0)).expect("lookup")
        });
        let d = db.metrics().delta(&before);
        let (hits, misses) = (d.counter("pool.hits"), d.counter("pool.misses"));
        let hit = 100.0 * hits as f64 / (hits + misses).max(1) as f64;
        t.row(vec![
            format!("{frames}"),
            format!("{hit:.1}"),
            format!("{:.1}", timing.mean_us),
        ]);
    }
    cleanup(&dir);
    t
}

/// E10 — recursive molecule (BOM) explosion.
pub fn e10_bom_explosion(s: Scale) -> Table {
    let mut t = Table::new(
        "E10",
        "BOM explosion latency vs assembly depth (fanout 3)",
        &["depth", "parts", "current µs", "past µs"],
        "latency grows with part count (≈3^depth); past slices track the same \
         curve with a constant-factor overhead",
    );
    for depth in [2usize, 4, 6, 8] {
        let (db, dir) = fresh_db(&format!("e10-{depth}"), StoreKind::Split, 4096);
        let bom = Bom::create(&db, 1, 3, depth).expect("bom");
        let past_tt = db.now();
        bom.engineering_changes(&db, s.n(200), 13).expect("changes");
        db.checkpoint().expect("ckpt");
        let now = db.now();
        let mut parts = 0usize;
        let cur = time_each(10, |_| {
            let m = db
                .materialize(bom.mol, bom.roots[0], now, TimePoint(0))
                .expect("mat")
                .expect("root visible");
            parts = m.size();
            m
        });
        let past = time_each(10, |_| {
            db.materialize(bom.mol, bom.roots[0], past_tt, TimePoint(0))
                .expect("mat")
        });
        t.row(vec![
            format!("{depth}"),
            format!("{parts}"),
            format!("{:.1}", cur.mean_us),
            format!("{:.1}", past.mean_us),
        ]);
        cleanup(&dir);
    }
    t
}

/// E11 — recovery time vs. log length.
pub fn e11_recovery(s: Scale) -> Table {
    let mut t = Table::new(
        "E11",
        "crash-recovery (WAL replay) time vs logged operations",
        &["logged ops", "wal bytes", "recovery ms"],
        "replay time grows linearly with the post-checkpoint log length — the \
         checkpoint-interval knob trades run-time flush cost for recovery time",
    );
    for ops in [s.n(1000), s.n(10_000), s.n(50_000)] {
        let (db, dir) = fresh_db(&format!("e11-{ops}"), StoreKind::Split, 4096);
        let syn = Synthetic::create(&db, s.n(500), 8).expect("load");
        db.checkpoint().expect("ckpt");
        syn.random_updates(&db, ops, 1, 500, 42).expect("updates");
        let wal = db.wal_len();
        db.crash();
        let timing = time_batch(1, || {
            let db = reopen_db(&dir, StoreKind::Split, 4096);
            drop(db);
        });
        t.row(vec![
            format!("{ops}"),
            bytes(wal),
            format!("{:.1}", timing.mean_us / 1000.0),
        ]);
        cleanup(&dir);
    }
    t
}

/// E12 — temporal algebra micro-operations.
pub fn e12_algebra(s: Scale) -> Table {
    use tcom_core::algebra::*;
    use tcom_kernel::{TemporalElement, Tuple, Value};
    let mut t = Table::new(
        "E12",
        "temporal algebra throughput (rows/s processed)",
        &["rows", "coalesce", "join", "difference"],
        "all operators are near-linear; join carries the hash-build constant",
    );
    let mut rng = StdRng::seed_from_u64(21);
    for n in [s.n(1000), s.n(10_000)] {
        let rel: TemporalRelation = (0..n)
            .map(|i| {
                let s0 = rng.gen_range(0..1000u64);
                TemporalRow {
                    tuple: Tuple::new(vec![Value::Int((i % (n / 4).max(1)) as i64)]),
                    time: TemporalElement::from_intervals([tcom_kernel::time::iv(
                        s0,
                        s0 + rng.gen_range(1..100),
                    )]),
                }
            })
            .collect();
        let other: TemporalRelation = rel.iter().take(n / 2).cloned().collect();
        let c = time_batch(n, || coalesce(rel.clone()));
        let j = time_batch(n, || {
            temporal_join(&rel, &other, |t| t.get(0).clone(), |t| t.get(0).clone())
        });
        let d = time_batch(n, || temporal_difference(rel.clone(), &other));
        t.row(vec![
            format!("{n}"),
            format!("{:.0}", c.ops_per_sec()),
            format!("{:.0}", j.ops_per_sec()),
            format!("{:.0}", d.ops_per_sec()),
        ]);
    }
    t
}

/// A1 — delta-granularity ablation.
pub fn a1_delta_granularity(s: Scale) -> Table {
    let mut t = Table::new(
        "A1",
        "delta store vs changed-attribute count (width 32, 16 versions)",
        &[
            "changed attrs",
            "delta bytes",
            "chain bytes",
            "ratio",
            "delta slice µs",
        ],
        "delta's storage advantage decays as more attributes change per update; \
         with all attributes changed the formats converge",
    );
    let n_atoms = s.n(300);
    for changed in [1usize, 8, 16, 31] {
        let mut row = vec![format!("{changed}")];
        let mut sizes = Vec::new();
        let mut slice_us = 0.0;
        for kind in [StoreKind::Delta, StoreKind::Chain] {
            let (db, dir) = fresh_db(&format!("a1-{kind}-{changed}"), kind, 2048);
            let syn = Synthetic::create(&db, n_atoms, 32).expect("load");
            syn.uniform_history(&db, 16, changed, 42).expect("history");
            db.checkpoint().expect("ckpt");
            let st = db.store_stats().expect("stats")[0].1;
            sizes.push(st.record_bytes);
            if kind == StoreKind::Delta {
                let mut rng = StdRng::seed_from_u64(3);
                let mid = TimePoint(db.now().0 / 2);
                let timing = time_each(s.n(200), |_| {
                    let a = syn.atoms[rng.gen_range(0..syn.atoms.len())];
                    db.versions_at(a, mid).expect("slice")
                });
                slice_us = timing.mean_us;
            }
            cleanup(&dir);
        }
        row.push(bytes(sizes[0]));
        row.push(bytes(sizes[1]));
        row.push(format!("{:.2}", sizes[0] as f64 / sizes[1] as f64));
        row.push(format!("{slice_us:.1}"));
        t.row(row);
    }
    t
}

/// A2 — atom-directory ablation: B⁺-tree vs heap scan.
pub fn a2_directory(s: Scale) -> Table {
    use std::sync::Arc;
    use tcom_storage::btree::BTree;
    use tcom_storage::keys::BKey;
    use tcom_storage::{BufferPool, DiskManager, HeapFile};
    let mut t = Table::new(
        "A2",
        "atom lookup: B⁺-tree directory vs heap scan (µs/lookup)",
        &["atoms", "directory µs", "heap scan µs", "speedup"],
        "the directory is O(log n) and effectively flat; scans grow linearly — \
         the reason every store keeps a directory",
    );
    for n in [s.n(1000), s.n(10_000)] {
        let dir = std::env::temp_dir().join(format!("tcom-bench-{}-a2-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let pool = BufferPool::new(4096);
        let hf = pool.register_file(Arc::new(DiskManager::open(dir.join("h.tcm")).expect("dm")));
        let bf = pool.register_file(Arc::new(DiskManager::open(dir.join("b.tcm")).expect("dm")));
        let heap = HeapFile::create(pool.clone(), hf).expect("heap");
        let tree = BTree::create(pool, bf).expect("tree");
        for i in 0..n as u64 {
            let mut rec = i.to_le_bytes().to_vec();
            rec.extend_from_slice(&[7u8; 40]);
            let rid = heap.insert(&rec).expect("insert");
            tree.insert(BKey::new(i, 0), rid.pack()).expect("index");
        }
        let mut rng = StdRng::seed_from_u64(17);
        let via_dir = time_each(s.n(2000), |_| {
            let k = rng.gen_range(0..n as u64);
            tree.get(BKey::new(k, 0)).expect("get")
        });
        let via_scan = time_each(20, |_| {
            let k = rng.gen_range(0..n as u64);
            let mut found = None;
            heap.scan(|rid, rec| {
                if rec.len() >= 8 && u64::from_le_bytes(rec[..8].try_into().expect("8")) == k {
                    found = Some(rid);
                    return Ok(false);
                }
                Ok(true)
            })
            .expect("scan");
            found
        });
        t.row(vec![
            format!("{n}"),
            format!("{:.2}", via_dir.mean_us),
            format!("{:.1}", via_scan.mean_us),
            format!("{:.0}×", via_scan.mean_us / via_dir.mean_us.max(0.001)),
        ]);
        let _ = std::fs::remove_dir_all(&dir);
    }
    t
}

/// E11b — checkpoint-interval trade-off (companion to E11).
pub fn e11b_checkpoint_tradeoff(s: Scale) -> Table {
    let mut t = Table::new(
        "E11b",
        "checkpoint interval: load time vs recovery exposure",
        &["interval (txns)", "load ms", "final wal bytes"],
        "frequent checkpoints slow the load (journal + flush per interval) but \
         bound the log a crash would have to replay",
    );
    let updates = s.n(10_000);
    for interval in [100u64, 1000, 0] {
        let dir =
            std::env::temp_dir().join(format!("tcom-bench-{}-e11b-{interval}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let db = Database::open(
            &dir,
            tcom_core::DbConfig::default()
                .store_kind(StoreKind::Split)
                .buffer_frames(4096)
                .checkpoint_interval(interval)
                .sync_policy(tcom_core::SyncPolicy::OnCheckpoint),
        )
        .expect("open");
        let syn = Synthetic::create(&db, s.n(500), 8).expect("load");
        let timing = time_batch(1, || {
            syn.random_updates(&db, updates, 1, 100, 42)
                .expect("updates");
        });
        t.row(vec![
            if interval == 0 {
                "none".into()
            } else {
                format!("{interval}")
            },
            format!("{:.1}", timing.mean_us / 1000.0),
            bytes(db.wal_len()),
        ]);
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
    t
}

/// E13 — parallel molecule materialization scaling over the striped pool.
///
/// Pool-resident university workload; each cell times repeated
/// `materialize_all_parallel` sweeps at 1/2/4/8 threads, against a
/// single-shard pool (the pre-striping single-mutex baseline) and the
/// auto-sharded pool. The headline acceptance number is the sharded
/// 4-thread throughput vs the 1-shard 4-thread baseline.
pub fn e13_parallel_scaling(s: Scale) -> Table {
    let mut t = Table::new(
        "E13",
        "parallel materialization: kmolecules/s vs threads (pool-resident)",
        &[
            "threads",
            "1-shard kmol/s",
            "sharded kmol/s",
            "shards speedup",
            "scale vs 1T",
        ],
        "the single-mutex pool plateaus as every fetch serializes on one lock; \
         the striped pool scales with the thread count until the memory bus, \
         not the mapping lock, is the limit",
    );
    let n_depts = s.n(96);
    let (uni, dir) = {
        let (db, dir) = fresh_db("e13", StoreKind::Split, 4096);
        let uni = University::create(&db, n_depts, 8, 4, 42).expect("load");
        db.checkpoint().expect("ckpt");
        (uni, dir)
    };

    // molecules/s at (shards, threads); reopened fresh per shard config.
    let sweep = |shards: usize| -> Vec<f64> {
        let db = crate::workloads::reopen_db_with(
            &dir,
            crate::workloads::bench_config(StoreKind::Split, 4096).buffer_shards(shards),
        );
        let tt = db.now();
        // Warm: pull the whole working set into the pool.
        let warm = db
            .materialize_all_parallel(uni.mol, tt, TimePoint(0), 4)
            .expect("warm");
        assert_eq!(warm.len(), n_depts);
        let rounds = s.n(24).min(64);
        [1usize, 2, 4, 8]
            .into_iter()
            .map(|threads| {
                let timing = time_batch(rounds * n_depts, || {
                    for _ in 0..rounds {
                        let ms = db
                            .materialize_all_parallel(uni.mol, tt, TimePoint(0), threads)
                            .expect("materialize");
                        std::hint::black_box(ms.len());
                    }
                });
                timing.ops_per_sec()
            })
            .collect()
    };
    let baseline = sweep(1);
    let sharded = sweep(0);
    for (i, threads) in [1usize, 2, 4, 8].into_iter().enumerate() {
        t.row(vec![
            format!("{threads}"),
            format!("{:.2}", baseline[i] / 1000.0),
            format!("{:.2}", sharded[i] / 1000.0),
            format!("{:.2}x", sharded[i] / baseline[i]),
            format!("{:.2}x", sharded[i] / sharded[0]),
        ]);
    }
    cleanup(&dir);
    t
}

/// Serializes a metrics-registry snapshot for `bench_results.json`.
fn metrics_json(snap: &tcom_core::MetricsSnapshot) -> serde_json::Value {
    let counters: Vec<serde_json::Value> = snap
        .counters
        .iter()
        .map(|c| {
            serde_json::json!({
                "name": c.name,
                "label": c.label,
                "value": c.value,
            })
        })
        .collect();
    let histograms: Vec<serde_json::Value> = snap
        .histograms
        .iter()
        .map(|h| {
            serde_json::json!({
                "name": h.name,
                "label": h.label,
                "count": h.count,
                "sum": h.sum,
            })
        })
        .collect();
    serde_json::json!({
        "counters": counters,
        "histograms": histograms,
    })
}

/// E14 — E1's I/O accounting re-derived from EXPLAIN ANALYZE.
///
/// Instead of reading the buffer-pool counters directly, the page counts
/// come out of the executor's per-operator report; the registry delta is
/// kept only as the cross-check (the two must agree exactly, which the
/// differential suite also asserts query-by-query).
pub fn e14_explain_io(s: Scale) -> Table {
    let mut t = Table::new(
        "E14",
        "cold current scan: EXPLAIN ANALYZE pages vs pool misses",
        &["store", "vers/atom", "EA pages", "miss Δ", "rows", "hit %"],
        "EA pages == pool-miss delta for every store kind (same fault path); \
         chain & delta page counts grow with history length, split stays flat",
    );
    let n_atoms = s.n(1000);
    let mut final_metrics = None;
    for kind in KINDS {
        for versions in [0usize, 16] {
            let (db, dir) = fresh_db(&format!("e14-{kind}-{versions}"), kind, 4096);
            let syn = Synthetic::create(&db, n_atoms, 8).expect("load");
            syn.random_updates(&db, n_atoms * versions, 1, 500, 42)
                .expect("updates");
            db.checkpoint().expect("ckpt");
            drop(db);

            // Cold reopen: every touched page faults in through the
            // instrumented read path and gets attributed to an operator.
            let db = reopen_db(&dir, kind, 4096);
            let before = db.metrics();
            let (_, report) = tcom_query::explain_analyze(&db, "EXPLAIN ANALYZE SELECT * FROM syn")
                .expect("explain");
            let d = db.metrics().delta(&before);
            let misses = d.counter("pool.misses");
            let fetches = d.counter("pool.fetches");
            assert_eq!(
                report.total_pages_read,
                misses,
                "executor page accounting disagrees with the pool:\n{}",
                report.render()
            );
            let hit = 100.0 * (fetches - misses) as f64 / fetches.max(1) as f64;
            t.row(vec![
                kind.to_string(),
                format!("{}", versions + 1),
                format!("{}", report.pages_read()),
                format!("{misses}"),
                format!("{}", report.root_rows()),
                format!("{hit:.1}"),
            ]);
            final_metrics = Some(metrics_json(&db.metrics()));
            cleanup(&dir);
        }
    }
    if let Some(m) = final_metrics {
        t.set_metrics(m);
    }
    t
}

/// E15 — the transaction-time interval index vs the chain walk.
///
/// Both access paths answer the same cold `ASOF TT` slice at mid-history;
/// the page counts come out of EXPLAIN ANALYZE (so the PR-3 invariant —
/// operator pages == pool-miss delta — keeps them honest). Each path runs
/// against a fresh cold reopen so neither warms the pool for the other.
pub fn e15_time_index(s: Scale) -> Table {
    let mut t = Table::new(
        "E15",
        "cold mid-history ASOF slice: pages read, index scan vs chain walk",
        &[
            "store",
            "vers/atom",
            "walk pages",
            "index pages",
            "saved",
            "rows",
        ],
        "the index wins where it can prune fetches: chain skips every closed \
         version invisible at tt via the payload filter, split prunes its \
         history partition; delta still replays chains per candidate atom, so \
         the index only narrows the atom set",
    );
    // Fixed size: below ~200 atoms the whole heap fits in a handful of
    // pages and the index's own pages never amortize, which would make the
    // quick run meaningless rather than merely coarse.
    let n_atoms = 200;
    let _ = s;
    for kind in KINDS {
        for rounds in [4usize, 16, 64] {
            let (db, dir) = fresh_db(&format!("e15-{kind}-{rounds}"), kind, 4096);
            let syn = Synthetic::create(&db, n_atoms, 8).expect("load");
            syn.uniform_history(&db, rounds, 1, 42).expect("history");
            db.checkpoint().expect("ckpt");
            let tt = db.now().0 / 2;
            drop(db);

            let sql = format!("EXPLAIN ANALYZE SELECT * FROM syn ASOF TT {tt}");
            let run_cold = |opts: tcom_query::ExecOptions| -> (String, u64, u64) {
                let db = reopen_db(&dir, kind, 4096);
                let (out, report) =
                    tcom_query::explain_analyze_with(&db, &sql, opts).expect("explain");
                assert_eq!(report.pages_read(), report.total_pages_read);
                (format!("{out:?}"), report.pages_read(), report.root_rows())
            };
            let (walk_out, walk_pages, walk_rows) = run_cold(tcom_query::ExecOptions {
                no_time_index: true,
                ..Default::default()
            });
            // Forced: the cost model would (correctly) route delta slices
            // to the walk, which would turn this into walk-vs-walk — the
            // experiment measures the raw paths, E18 measures the choice.
            let (index_out, index_pages, index_rows) = run_cold(tcom_query::ExecOptions {
                force_time_index: true,
                ..Default::default()
            });
            assert_eq!(
                walk_out, index_out,
                "[{kind}/{rounds}] access paths returned different rows"
            );
            // Acceptance floor: on the chain store, deep histories must be
            // strictly cheaper through the index.
            if kind == StoreKind::Chain && rounds >= 16 {
                assert!(
                    index_pages < walk_pages,
                    "[{kind}/{rounds}] index slice should touch fewer pages \
                     ({index_pages} vs {walk_pages})"
                );
            }
            t.row(vec![
                kind.to_string(),
                format!("{}", rounds + 1),
                format!("{walk_pages}"),
                format!("{index_pages}"),
                format!(
                    "{:.0}%",
                    100.0 * (1.0 - index_pages as f64 / walk_pages.max(1) as f64)
                ),
                format!("{walk_rows}={index_rows}"),
            ]);
            cleanup(&dir);
        }
    }
    t
}

/// E16 — group commit: fsyncs per commit and throughput as concurrent
/// committer threads grow, with and without the leader/follower batch.
pub fn e16_group_commit(s: Scale) -> Table {
    use std::time::Instant;
    use tcom_core::{AttrDef, DataType, DbConfig, SyncPolicy, Tuple, Value};

    let mut t = Table::new(
        "E16",
        "group commit: commits/s and fsyncs per commit vs committer threads",
        &[
            "threads",
            "group",
            "commits",
            "commits/s",
            "fsyncs/commit",
            "batch p50",
        ],
        "with the leader/follower gate, concurrent committers amortize one \
         fsync over a whole batch: fsyncs/commit drops below 1 and the batch \
         p50 grows with the thread count; without it every commit pays its \
         own fsync regardless of concurrency",
    );
    let per_thread = s.n(160);
    let mut final_metrics = None;
    for group in [false, true] {
        for threads in [1usize, 2, 4, 8] {
            let cfg = DbConfig::default()
                .store_kind(StoreKind::Split)
                .buffer_frames(4096)
                .checkpoint_interval(0)
                .sync_policy(SyncPolicy::OnCommit)
                .group_commit(group);
            let (db, dir) = crate::workloads::fresh_db_with(&format!("e16-{group}-{threads}"), cfg);
            let types: Vec<_> = (0..threads)
                .map(|i| {
                    db.define_atom_type(format!("w{i}"), vec![AttrDef::new("v", DataType::Int)])
                        .expect("type")
                })
                .collect();

            let before = db.metrics();
            let t0 = Instant::now();
            std::thread::scope(|scope| {
                for &ty in &types {
                    let db = &db;
                    scope.spawn(move || {
                        for k in 0..per_thread {
                            let mut txn = db.begin();
                            txn.insert_atom(
                                ty,
                                Interval::all(),
                                Tuple::new(vec![Value::Int(k as i64)]),
                            )
                            .expect("insert");
                            txn.commit().expect("commit");
                        }
                    });
                }
            });
            let elapsed = t0.elapsed();
            let d = db.metrics().delta(&before);
            let commits = (threads * per_thread) as f64;
            let fsyncs = d.counter("wal.fsyncs") as f64;
            let p50 = db
                .metrics()
                .histogram("wal.group_size")
                .map(|h| h.percentile(0.5))
                .unwrap_or(0);
            // Acceptance floor: with the gate and real concurrency, the
            // fsync rate must amortize and real batches must form.
            if group && threads >= 4 {
                assert!(
                    fsyncs / commits < 1.0,
                    "group commit must amortize fsyncs ({fsyncs} syncs / {commits} commits)"
                );
                assert!(
                    p50 >= 2,
                    "median sync batch must exceed one commit (p50={p50})"
                );
            }
            t.row(vec![
                format!("{threads}"),
                format!("{}", if group { "on" } else { "off" }),
                format!("{}", commits as u64),
                format!("{:.0}", commits / elapsed.as_secs_f64()),
                format!("{:.2}", fsyncs / commits),
                format!("{p50}"),
            ]);
            final_metrics = Some(metrics_json(&db.metrics()));
            cleanup(&dir);
        }
    }
    if let Some(m) = final_metrics {
        t.set_metrics(m);
    }
    t
}

/// E18 — the cost-based planner: choice accuracy and batched throughput.
///
/// Part (a): on deep-history `ASOF TT` slices the planner must choose the
/// time-index slice on chain/split and the heap walk on delta (the E15
/// regression), and the `est=` page count printed by EXPLAIN ANALYZE must
/// track the actual pages faulted. The prepare step itself computes the
/// statistics snapshot (an exhaustive store scan that warms the heap), so
/// the estimate is residency-discounted and the comparison runs warm-heap /
/// cold-index — small numbers, hence the additive slack on the bound.
///
/// Part (b): the columnar batch operators vs the scalar algebra on
/// E12-shaped relations — join and aggregation must win on rows/s.
pub fn e18_planner(s: Scale) -> Table {
    use tcom_core::algebra::{
        coalesce, temporal_aggregate, temporal_join, TemporalRelation, TemporalRow,
    };
    use tcom_core::batch::{aggregate_batch, coalesce_batch, join_batches, VersionBatch};
    use tcom_kernel::{AtomId, AtomNo, AtomTypeId, Interval, TemporalElement, Tuple, Value};
    use tcom_query::AccessPath;

    let mut t = Table::new(
        "E18",
        "cost-based planner: chosen path, est vs actual pages; batch vs scalar rows/s",
        &["case", "choice", "est|scalar", "act|batch", "ratio", "ok"],
        "the model slices chain/split and walks delta on deep-history slices, \
         with actual pages inside 2x of the estimate (+8 warm slack); the \
         columnar join/aggregate operators beat the scalar algebra",
    );

    // Part (a) — planner choice + estimate accuracy, E15's deep shape.
    let n_atoms = 200;
    let rounds = 64;
    for kind in KINDS {
        let (db, dir) = fresh_db(&format!("e18-{kind}"), kind, 4096);
        let syn = Synthetic::create(&db, n_atoms, 8).expect("load");
        syn.uniform_history(&db, rounds, 1, 42).expect("history");
        db.checkpoint().expect("ckpt");
        let tt = db.now().0 / 2;
        drop(db);

        let db = reopen_db(&dir, kind, 4096);
        let sql = format!("SELECT * FROM syn ASOF TT {tt}");
        // Preparing prices the paths (and computes the stats snapshot).
        let p = tcom_query::prepare_with(&db, &sql, tcom_query::ExecOptions::default())
            .expect("prepare");
        let est = p.est_pages.expect("cost-model estimate");
        let choice = match p.access {
            AccessPath::TimeSlice { .. } => "slice",
            AccessPath::Scan => "walk",
            ref other => panic!("[{kind}] unexpected ASOF plan: {other:?}"),
        };
        // Acceptance: the E15 regression is now a planner decision.
        let want = if kind == StoreKind::Delta {
            "walk"
        } else {
            "slice"
        };
        assert_eq!(choice, want, "[{kind}] wrong deep-history ASOF choice");

        let (_, report) = tcom_query::explain_analyze_with(
            &db,
            &format!("EXPLAIN ANALYZE {sql}"),
            tcom_query::ExecOptions::default(),
        )
        .expect("explain");
        let actual = report.total_pages_read;
        assert!(
            actual <= est * 2 + 8 && est <= actual * 2 + 8,
            "[{kind}] estimate off: est={est} actual={actual}\n{}",
            report.render()
        );
        t.row(vec![
            format!("{kind} d{} tt/2", rounds + 1),
            choice.into(),
            format!("{est}"),
            format!("{actual}"),
            format!("{:.2}", actual as f64 / est.max(1) as f64),
            "✓".into(),
        ]);
        cleanup(&dir);
    }

    // Part (b) — batch operators vs the scalar algebra on E12 shapes.
    let n = s.n(10_000);
    let mut rng = StdRng::seed_from_u64(21);
    let mut rel: TemporalRelation = Vec::with_capacity(n);
    let mut b = VersionBatch::with_capacity(n);
    for i in 0..n {
        let s0 = rng.gen_range(0..1000u64);
        let iv = tcom_kernel::time::iv(s0, s0 + rng.gen_range(1..100));
        let key = (i % (n / 4).max(1)) as i64;
        rel.push(TemporalRow {
            tuple: Tuple::new(vec![Value::Int(key)]),
            time: TemporalElement::from_intervals([iv]),
        });
        // Same key layout; the atom mirrors the key so per-atom COALESCE
        // grouping does the same merging work as the scalar's tuple keys.
        b.push_row(
            AtomId::new(AtomTypeId(1), AtomNo(key as u64)),
            Tuple::new(vec![Value::Int(key)]),
            iv,
            Interval::all(),
        );
    }
    let other: TemporalRelation = rel.iter().take(n / 2).cloned().collect();
    let mut bo = VersionBatch::with_capacity(n / 2);
    for (atom, tuple, vt, tt) in b.rows().take(n / 2) {
        bo.push_row(atom, tuple.clone(), vt, tt);
    }

    let mut part_b = |case: &str, scalar: f64, batch: f64, must_win: bool| {
        if must_win {
            assert!(
                batch > scalar,
                "batched {case} must beat the scalar algebra \
                 ({batch:.0} vs {scalar:.0} rows/s)"
            );
        }
        t.row(vec![
            format!("{case} {n}"),
            "batch".into(),
            format!("{scalar:.0}"),
            format!("{batch:.0}"),
            format!("{:.2}x", batch / scalar.max(1.0)),
            if must_win { "✓".into() } else { "-".into() },
        ]);
    };
    let sj = time_batch(n, || {
        temporal_join(&rel, &other, |t| t.get(0).clone(), |t| t.get(0).clone())
    });
    let bj = time_batch(n, || join_batches(&b, &bo, 0, 0));
    part_b("join", sj.ops_per_sec(), bj.ops_per_sec(), true);
    let sa = time_batch(n, || temporal_aggregate(&rel, Some(0)));
    let ba = time_batch(n, || aggregate_batch(&b, Some(0)));
    part_b("aggregate", sa.ops_per_sec(), ba.ops_per_sec(), true);
    let sc = time_batch(n, || coalesce(rel.clone()));
    let bc = time_batch(n, || coalesce_batch(&b, &[0]));
    part_b("coalesce", sc.ops_per_sec(), bc.ops_per_sec(), false);
    t
}

/// E19 — wire-protocol throughput and latency vs. connection count.
///
/// A seeded `emp` table is served over loopback TCP; each connection is a
/// synchronous request/response session replaying a mix of indexed point
/// lookups and a temporal aggregate. The database is reopened per
/// configuration (like E13) so each sweep step gets a fresh metrics
/// registry and buffer pool, and `server_threads` always matches the
/// connection count.
pub fn e19_wire_throughput(s: Scale) -> Table {
    use tcom_client::Client;
    use tcom_query::run_statement;
    use tcom_server::{Server, ServerConfig};

    let mut t = Table::new(
        "E19",
        "wire protocol: throughput / latency vs concurrent connections (loopback TCP)",
        &[
            "conns",
            "stmts/s",
            "mean µs",
            "p50 µs",
            "p95 µs",
            "scale vs 1",
        ],
        "every connection is one synchronous session, so a single connection is \
         bound by the loopback round-trip; adding connections overlaps those \
         round-trips until the worker pool or the machine's cores saturate \
         (a single-core container plateaus almost immediately)",
    );

    let (seed_db, dir) = fresh_db("e19", StoreKind::Split, 4096);
    run_statement(
        &seed_db,
        "CREATE TYPE emp (name TEXT NOT NULL, salary INT INDEXED)",
    )
    .expect("ddl");
    let n_emps = s.n(512);
    for i in 0..n_emps {
        run_statement(
            &seed_db,
            &format!(
                "INSERT INTO emp (name, salary) VALUES ('e{i}', {}) VALID IN [0, 100)",
                (i % 50) * 10
            ),
        )
        .expect("seed");
    }
    // A little version history so temporal reads do real work.
    run_statement(&seed_db, "UPDATE emp SET salary = 995 WHERE salary = 490").expect("history");
    seed_db.checkpoint().expect("ckpt");
    drop(seed_db);

    let rounds = s.n(256);
    let mut base = 0.0f64;
    for conns in [1usize, 4, 8, 16] {
        let db = std::sync::Arc::new(reopen_db(&dir, StoreKind::Split, 4096));
        let mut server = Server::start(db.clone(), ServerConfig::default().server_threads(conns))
            .expect("start server");
        let addr = server.local_addr();

        let t0 = std::time::Instant::now();
        let mut lats: Vec<u64> = std::thread::scope(|sc| {
            let handles: Vec<_> = (0..conns)
                .map(|ci| {
                    sc.spawn(move || {
                        let mut c = Client::connect(addr).expect("connect");
                        let mut lat = Vec::with_capacity(rounds);
                        for r in 0..rounds {
                            let sql = if r % 4 == 3 {
                                "SELECT COUNT(*) FROM emp VALID IN [0, 50)".to_string()
                            } else {
                                format!(
                                    "SELECT name, salary FROM emp WHERE salary = {}",
                                    ((r * 7 + ci * 13) % 50) * 10
                                )
                            };
                            let q0 = std::time::Instant::now();
                            c.query_output(&sql).expect("wire statement");
                            lat.push(q0.elapsed().as_micros() as u64);
                        }
                        lat
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("client thread"))
                .collect()
        });
        let wall = t0.elapsed().as_secs_f64();
        server.shutdown();
        drop(server);
        drop(db);

        lats.sort_unstable();
        let total = lats.len();
        let thr = total as f64 / wall.max(1e-9);
        let mean = lats.iter().sum::<u64>() as f64 / total.max(1) as f64;
        let p50 = lats[total / 2];
        let p95 = lats[(total * 95 / 100).min(total - 1)];
        if conns == 1 {
            base = thr;
        }
        t.row(vec![
            format!("{conns}"),
            format!("{thr:.0}"),
            format!("{mean:.1}"),
            format!("{p50}"),
            format!("{p95}"),
            format!("{:.2}x", thr / base.max(1e-9)),
        ]);
    }
    cleanup(&dir);
    t
}

/// E20 — replication: replica replay throughput and catch-up lag vs
/// write-burst size.
///
/// A leader serves its WAL stream over loopback to one read replica
/// (DESIGN §14). Each row commits a burst of single-row transactions on
/// the leader as fast as possible while the replica follows live, then
/// measures the transaction-time gap at the end of the burst and the
/// wall-clock until the replica's published clock catches the leader's.
/// Replay throughput counts the whole burst against the total
/// first-write → caught-up wall (replay overlaps the writes).
pub fn e20_replication(s: Scale) -> Table {
    use tcom_client::ReplicaFollower;
    use tcom_core::WalApplier;
    use tcom_query::run_statement;
    use tcom_server::{Server, ServerConfig};

    let mut t = Table::new(
        "E20",
        "replication: replica replay throughput / catch-up lag vs write burst (loopback TCP)",
        &[
            "burst txns",
            "leader tx/s",
            "replay tx/s",
            "lag @ burst end (tt)",
            "catch-up ms",
        ],
        "the replica replays committed batches in WAL (= transaction-time) order \
         while the leader keeps writing; lag at burst end shows how far a \
         synchronous writer outruns one applier, catch-up how fast the applier \
         drains once writes stop",
    );

    const DDL: &str = "CREATE TYPE emp (name TEXT NOT NULL, salary INT INDEXED)";
    let (leader, ldir) = fresh_db("e20-lead", StoreKind::Split, 4096);
    run_statement(&leader, DDL).expect("leader ddl");
    let leader = std::sync::Arc::new(leader);
    let server = Server::start(leader.clone(), ServerConfig::default().server_threads(2))
        .expect("start server");

    let (replica, rdir) = fresh_db("e20-repl", StoreKind::Split, 4096);
    run_statement(&replica, DDL).expect("replica ddl");
    let replica = std::sync::Arc::new(replica);
    let applier = WalApplier::new(replica.clone()).expect("applier");
    let follower = ReplicaFollower::start(server.local_addr().to_string(), applier);

    let mut next = 0usize;
    for burst in [64usize, 256, 1024] {
        let n = s.n(burst);
        let t0 = std::time::Instant::now();
        for _ in 0..n {
            run_statement(
                &leader,
                &format!(
                    "INSERT INTO emp (name, salary) VALUES ('b{next}', {})",
                    (next % 50) * 10
                ),
            )
            .expect("leader write");
            next += 1;
        }
        let write_wall = t0.elapsed();
        let target = leader.now();
        let lag_at_end = target.0.saturating_sub(replica.now().0);
        let c0 = std::time::Instant::now();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        while replica.now() < target {
            if let Some(e) = follower.last_error() {
                panic!("follower died: {e}");
            }
            assert!(
                std::time::Instant::now() < deadline,
                "replica never caught up"
            );
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        let catch_up = c0.elapsed();
        let total = write_wall + catch_up;
        t.row(vec![
            format!("{n}"),
            format!("{:.0}", n as f64 / write_wall.as_secs_f64().max(1e-9)),
            format!("{:.0}", n as f64 / total.as_secs_f64().max(1e-9)),
            format!("{lag_at_end}"),
            format!("{:.1}", catch_up.as_secs_f64() * 1e3),
        ]);
    }
    follower.stop();
    drop(server);
    drop(leader);
    drop(replica);
    cleanup(&ldir);
    cleanup(&rdir);
    t
}

/// E21 — tiered storage: the E15 cold mid-history slice re-measured after
/// closed history is compacted into compressed immutable segments. The
/// tiered engine must answer byte-identically while reading strictly
/// fewer pages than the flat baseline on deep histories.
pub fn e21_tiered_slice(s: Scale) -> Table {
    let mut t = Table::new(
        "E21",
        "cold mid-history ASOF slice: flat heap vs tiered segments, pages read",
        &[
            "store",
            "vers/atom",
            "flat pages",
            "tiered pages",
            "saved",
            "seg comp",
            "rows",
        ],
        "compaction moves the closed-version majority out of the heap into \
         LZSS-compressed segments with per-block interval fences; the slice \
         pays for the current heap plus only the admitted segment blocks, so \
         deep histories get strictly cheaper while answering byte-identically",
    );
    // Same fixed shape as E15, and for the same reason: below ~200 atoms
    // the page counts are too small to mean anything.
    let n_atoms = 200;
    let _ = s;
    for kind in KINDS {
        for rounds in [16usize, 64] {
            // Twin engines with identical deterministic histories: the
            // flat one never compacts; the tiered one compacts after each
            // phase, the steady state a background compactor converges to
            // — each segment then covers one narrow transaction-time band
            // and the slice's fences can skip the others outright.
            let phases = if rounds >= 64 { 8 } else { 4 };
            let (flat, flat_dir) = fresh_db(&format!("e21f-{kind}-{rounds}"), kind, 4096);
            let (tiered, tiered_dir) = fresh_db(&format!("e21t-{kind}-{rounds}"), kind, 4096);
            let syn_f = Synthetic::create(&flat, n_atoms, 8).expect("load flat");
            let syn_t = Synthetic::create(&tiered, n_atoms, 8).expect("load tiered");
            let mut archived = 0u64;
            for p in 0..phases {
                let seed = 42 + p as u64;
                syn_f
                    .uniform_history(&flat, rounds / phases, 1, seed)
                    .expect("flat history");
                syn_t
                    .uniform_history(&tiered, rounds / phases, 1, seed)
                    .expect("tiered history");
                archived += tiered.compact_all().expect("phase compaction");
            }
            assert!(archived > 0, "[{kind}/{rounds}] nothing archived");
            assert_eq!(flat.now(), tiered.now(), "twin clocks must agree");
            let comp_ratio = {
                let m = tiered.metrics();
                m.counter("segment.comp_bytes") as f64 / m.counter("segment.raw_bytes") as f64
            };
            flat.checkpoint().expect("ckpt");
            let tt = flat.now().0 / 2;
            drop(flat);
            drop(tiered);

            let sql = format!("EXPLAIN ANALYZE SELECT * FROM syn ASOF TT {tt}");
            let run_cold = |dir: &std::path::PathBuf| -> (String, u64, u64, u64) {
                // Measure through a deliberately small pool: reopening
                // recomputes planner statistics, whose heap sweep would
                // otherwise leave the whole store resident and bill the
                // flat engine's slice as free (the delta heap packs the
                // whole deep history under 64 frames). At 16 frames the
                // sweep washes through and the query itself runs cold.
                let db = reopen_db(dir, kind, 16);
                let (out, report) = tcom_query::explain_analyze_with(&db, &sql, Default::default())
                    .expect("explain");
                assert_eq!(report.pages_read(), report.total_pages_read);
                let skips = db.metrics().counter("segment.skips");
                if std::env::var("E21_DEBUG").is_ok() {
                    eprintln!("--- {} ---\n{}", dir.display(), report.render());
                    let m = db.metrics();
                    eprintln!(
                        "segment.live={} pages={} reads={} skips={}",
                        m.counter("segment.live"),
                        m.counter("segment.pages"),
                        m.counter("segment.reads"),
                        m.counter("segment.skips"),
                    );
                }
                (
                    format!("{out:?}"),
                    report.pages_read(),
                    report.root_rows(),
                    skips,
                )
            };
            let (flat_out, flat_pages, flat_rows, _) = run_cold(&flat_dir);
            let (tiered_out, tiered_pages, tiered_rows, skips) = run_cold(&tiered_dir);

            assert_eq!(
                flat_out, tiered_out,
                "[{kind}/{rounds}] tiering changed the slice"
            );
            // Acceptance floor: on deep histories the tiered slice must be
            // strictly cheaper on every store. (At shallow depths the flat
            // engine's best path is already near-minimal — E15 draws the
            // same line — so the shallow row is context, not a gate.)
            if rounds >= 64 {
                assert!(
                    tiered_pages < flat_pages,
                    "[{kind}/{rounds}] tiered slice must read strictly fewer pages \
                     ({tiered_pages} vs {flat_pages}, {archived} versions archived)"
                );
            }
            assert!(
                skips > 0,
                "[{kind}/{rounds}] segment fences must have pruned whole \
                 segments for the mid-history slice"
            );
            t.row(vec![
                kind.to_string(),
                format!("{}", rounds + 1),
                format!("{flat_pages}"),
                format!("{tiered_pages}"),
                format!(
                    "{:.0}%",
                    100.0 * (1.0 - tiered_pages as f64 / flat_pages.max(1) as f64)
                ),
                format!("{:.2}", comp_ratio),
                format!("{flat_rows}={tiered_rows}"),
            ]);
            cleanup(&flat_dir);
            cleanup(&tiered_dir);
        }
    }
    t
}

/// Runs every experiment at the given scale.
pub fn run_all(s: Scale) -> Vec<Table> {
    vec![
        e1_current_access(s),
        e2_past_timeslice(s),
        e3_update_cost(s),
        e4_storage_consumption(s),
        e5_molecule_timeslice(s),
        e6_history_query(s),
        e7_access_paths(s),
        e8_bitemporal_matrix(s),
        e9_buffer_sensitivity(s),
        e10_bom_explosion(s),
        e11_recovery(s),
        e11b_checkpoint_tradeoff(s),
        e12_algebra(s),
        e13_parallel_scaling(s),
        e14_explain_io(s),
        e15_time_index(s),
        e16_group_commit(s),
        crate::soak::e17_soak(s),
        e18_planner(s),
        e19_wire_throughput(s),
        e20_replication(s),
        e21_tiered_slice(s),
        a1_delta_granularity(s),
        a2_directory(s),
    ]
}
