//! Mixed-workload soak driver with fault injection and invariant oracles.
//!
//! A seeded run drives N concurrent actor threads drawn from a weighted
//! scenario mix — OLTP inserters/updaters, retroactive valid-time
//! correctors (updates strictly below the valid-time "present"
//! watermark), ASOF analytical readers on pinned [`ReadView`]s, recursive
//! BOM-explosion readers (the E10 molecule shapes from [`crate::workloads`]),
//! and a queue consumer built on the `claim_next` row-claim primitive —
//! optionally above [`FaultVfs`] with scheduled power cuts followed by
//! recovery-and-resume.
//!
//! Correctness is enforced by oracles, not just liveness:
//!
//! * every actor logs its committed operations to a **content-keyed
//!   journal** (`(tt, scenario, ops)`, rows identified by their key
//!   attribute, never by atom id);
//! * [`verify_soak`] serially replays the journal on all three store
//!   kinds; every replayed commit must **draw the live run's transaction
//!   time**, every claim must claim the live run's row, and the ASOF
//!   slices at sampled timestamps must be **byte-identical** between the
//!   live engine and all three replays;
//! * after each injected power cut the recovered state must be exactly
//!   the committed prefix: no *reported* commit may be lost, and every
//!   recovered transaction time above the journal must be claimed by an
//!   **in-doubt** commit attempt — one whose `commit` call errored after
//!   the cut, though the group-commit fsync had already made its WAL
//!   record durable. Resolution matches each such tt against the unique
//!   attempt whose content fingerprint (fresh keys, random values) the
//!   recovered store carries; the store must also pass the integrity
//!   sweep before the actors resume.
//!
//! Why replay-equality is sound: every soak transaction touches a single
//! atom type, so its first stripe acquisition precedes any read or atom
//! allocation — wait-die victims die before they burn state, committed
//! transaction times are consecutive, and the state a transaction saw in
//! the live run (committed same-type state below its own tt) is exactly
//! the state the serial replay presents at the same position.
//!
//! Per-scenario throughput and latency are recorded through `tcom-obs`
//! histograms labeled by scenario; [`e17_soak`] reports them as the E17
//! experiment table.

use crate::measure::Table;
use crate::workloads::Bom;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use tcom_core::{
    is_wait_die_abort, AtomId, AtomTypeId, AttrDef, Compactor, Counter, DataType, Database,
    DbConfig, Error, FaultSchedule, FaultVfs, Histogram, Interval, MoleculeTypeId, Registry,
    Result, StoreKind, SyncPolicy, TimePoint, Tuple, Txn, Value,
};

/// The scenario mix, by label. Actor `i` runs scenario `i % 5`, so any
/// actor count ≥ 5 exercises every scenario.
pub const SCENARIOS: [&str; 5] = ["oltp", "correct", "asof", "bom", "queue"];

/// The valid-time "present" watermark: retroactive correctors write
/// strictly below it, OLTP activity stays at or above it.
const VT_NOW: u64 = 5_000;

/// One soak run's shape. All randomness derives from `seed`; the oracle
/// assertions hold for any thread schedule.
#[derive(Clone, Debug)]
pub struct SoakConfig {
    /// Master seed; actor RNGs derive from it.
    pub seed: u64,
    /// Store kind of the live engine (replays always cover all three).
    pub kind: StoreKind,
    /// Actor threads; `i % 5` picks the scenario.
    pub actors: usize,
    /// Committed transactions (writers) / queries (readers) per actor.
    pub txns_per_actor: usize,
    /// Pre-seeded record atoms (keys `0..rec_atoms`).
    pub rec_atoms: usize,
    /// BOM tree fanout (E10 shape).
    pub bom_fanout: usize,
    /// BOM tree depth (E10 shape).
    pub bom_depth: usize,
    /// Power cuts to inject (0 = fault-free run).
    pub power_cuts: usize,
    /// Mutating I/O operations between arming a cut and it striking.
    pub crash_op_spacing: u64,
    /// Run a background [`Compactor`] on the live engine (replays never
    /// compact — they are the oracle the tiered engine must match).
    pub compaction: bool,
}

impl SoakConfig {
    /// The small deterministic shape the tier-1 smoke test runs per seed.
    pub fn small(seed: u64, kind: StoreKind, power_cuts: usize) -> SoakConfig {
        SoakConfig {
            seed,
            kind,
            actors: 5,
            txns_per_actor: 8,
            rec_atoms: 8,
            bom_fanout: 2,
            bom_depth: 2,
            power_cuts,
            crash_op_spacing: 30,
            compaction: false,
        }
    }
}

/// SplitMix64: tiny, seedable, fully deterministic.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1))
    }
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// One journaled operation. Rows are identified by content (the key
/// attribute or the pre-seed index), never by atom id: the journal must
/// replay on a fresh engine whose id sequence it does not control.
#[derive(Clone, Debug)]
pub enum SoakOp {
    /// Insert a brand-new record atom.
    NewRec {
        /// Unique content key (attribute 0).
        key: i64,
        /// Payload.
        val: i64,
        /// Valid extent.
        vt: Interval,
    },
    /// Bitemporal update of pre-seeded record `idx`.
    SetRec {
        /// Index into the pre-seeded record atoms (== its key).
        idx: usize,
        /// New payload.
        val: i64,
        /// Valid extent (below [`VT_NOW`] for correctors).
        vt: Interval,
    },
    /// Logical deletion over a valid extent of pre-seeded record `idx`.
    DelRec {
        /// Index into the pre-seeded record atoms.
        idx: usize,
        /// Deleted extent.
        vt: Interval,
    },
    /// Produce an open queue job.
    NewJob {
        /// Unique job key.
        key: i64,
    },
    /// Claim-and-close the oldest open job; `key` is the row the live run
    /// claimed — the replay must claim the same one.
    Claim {
        /// Key of the row the claim took.
        key: i64,
    },
}

/// One committed transaction: `(tt, scenario index, ops)`.
pub type CommittedTxn = (u64, usize, Vec<SoakOp>);

/// The seeded schema and data every engine (live and replay) starts from.
pub struct SoakWorld {
    /// Record type (`rec(key INT INDEXED, val INT)`).
    pub rec: AtomTypeId,
    /// Queue type (`job(key INT, state INT)`), state 0 = open.
    pub job: AtomTypeId,
    /// BOM part type (type 0 so the E10 self-referential shape holds).
    pub part: AtomTypeId,
    /// The `bom` molecule type.
    pub mol: MoleculeTypeId,
    /// Pre-seeded record atoms; index == key.
    pub recs: Vec<AtomId>,
    /// BOM root assemblies.
    pub roots: Vec<AtomId>,
    /// Transaction time after seeding; the journal starts above it.
    pub base_tt: u64,
}

fn rec_tuple(key: i64, val: i64) -> Tuple {
    Tuple::new(vec![Value::Int(key), Value::Int(val)])
}

fn job_tuple(key: i64, state: i64) -> Tuple {
    Tuple::new(vec![Value::Int(key), Value::Int(state)])
}

/// Seeds the soak schema and base data. Fully deterministic: live and
/// replay engines call this with the same config and must end at the same
/// transaction time with the same atom ids.
pub fn seed_world(db: &Database, cfg: &SoakConfig) -> Result<SoakWorld> {
    // The BOM first: `Bom::create` declares the self-referential E10 part
    // type, which must be type 0 for its component refset to point back
    // at itself.
    let bom = Bom::create(db, 1, cfg.bom_fanout, cfg.bom_depth)?;
    let rec = db.define_atom_type(
        "rec",
        vec![
            AttrDef::new("key", DataType::Int).indexed(),
            AttrDef::new("val", DataType::Int),
        ],
    )?;
    let job = db.define_atom_type(
        "job",
        vec![
            AttrDef::new("key", DataType::Int),
            AttrDef::new("state", DataType::Int),
        ],
    )?;
    let mut txn = db.begin();
    let recs: Vec<AtomId> = (0..cfg.rec_atoms)
        .map(|k| txn.insert_atom(rec, Interval::all(), rec_tuple(k as i64, 0)))
        .collect::<Result<_>>()?;
    txn.commit()?;
    Ok(SoakWorld {
        rec,
        job,
        part: bom.part,
        mol: bom.mol,
        recs,
        roots: bom.roots,
        base_tt: db.now().0,
    })
}

/// Applies one journaled op to a transaction. Returns the claimed key for
/// [`SoakOp::Claim`], `None` otherwise.
fn apply_soak_op(txn: &mut Txn<'_>, world: &SoakWorld, op: &SoakOp) -> Result<Option<i64>> {
    match op {
        SoakOp::NewRec { key, val, vt } => {
            txn.insert_atom(world.rec, *vt, rec_tuple(*key, *val))?;
            Ok(None)
        }
        SoakOp::SetRec { idx, val, vt } => {
            txn.update(world.recs[*idx], *vt, rec_tuple(*idx as i64, *val))?;
            Ok(None)
        }
        SoakOp::DelRec { idx, vt } => {
            txn.delete(world.recs[*idx], *vt)?;
            Ok(None)
        }
        SoakOp::NewJob { key } => {
            txn.insert_atom(world.job, Interval::all(), job_tuple(*key, 0))?;
            Ok(None)
        }
        SoakOp::Claim { .. } => {
            let claimed = txn.claim_next(
                world.job,
                TimePoint(0),
                |t| t.get(1) == &Value::Int(0),
                |t| {
                    let mut t = t.clone();
                    t.set(1, Value::Int(1));
                    t
                },
            )?;
            Ok(claimed.map(|(_, t)| match t.get(0) {
                Value::Int(k) => *k,
                other => panic!("job key must be an int, got {other:?}"),
            }))
        }
    }
}

/// A bounded valid interval strictly below the [`VT_NOW`] watermark — the
/// retroactive corrector's domain.
fn past_vt(rng: &mut Rng) -> Interval {
    let lo = rng.below(VT_NOW - 500);
    let hi = (lo + 1 + rng.below(400)).min(VT_NOW);
    Interval::new(TimePoint(lo), TimePoint(hi)).expect("non-empty past interval")
}

/// A valid interval at or above the watermark — the OLTP domain.
fn live_vt(rng: &mut Rng) -> Interval {
    let lo = VT_NOW + rng.below(4_000);
    if rng.below(4) == 0 {
        Interval::from_start(TimePoint(lo))
    } else {
        let hi = lo + 1 + rng.below(800);
        Interval::new(TimePoint(lo), TimePoint(hi)).expect("non-empty live interval")
    }
}

struct Actor {
    scenario: usize,
    rng: Rng,
    remaining: usize,
    next_key: i64,
    iter: u64,
}

struct LegCtx<'a> {
    db: &'a Database,
    world: &'a SoakWorld,
    journal: &'a Mutex<Vec<CommittedTxn>>,
    /// Commit attempts that errored *inside* `Txn::commit` during a fault
    /// window: the power cut may have struck after the WAL fsync, in which
    /// case the transaction is durable even though the API reported
    /// failure (a classic in-doubt commit). Recovery resolves these
    /// against the recovered store's per-tt effects.
    in_doubt: &'a Mutex<Vec<(usize, Vec<SoakOp>)>>,
    crashed: &'a AtomicBool,
    faults_armed: bool,
    instruments: &'a [(Histogram, Counter)],
}

/// True when the error is the fault VFS refusing I/O — the actor's signal
/// that the power went out and the leg is over.
fn is_crash(e: &Error) -> bool {
    matches!(e, Error::FaultInjected(_))
}

/// Asserts the planner invariant every reader checks online: versions of
/// one atom at one transaction time never overlap in valid time.
fn assert_nonoverlapping(vs: &[tcom_version::AtomVersion], what: &str) {
    for w in vs.windows(2) {
        assert!(
            !w[0].vt.overlaps(&w[1].vt),
            "{what}: overlapping valid times {:?} / {:?}",
            w[0].vt,
            w[1].vt
        );
    }
}

/// The durable effects of transaction time `tt` in the recovered store:
/// `(inserted, closed)` version facts, each `(type index, atom, tuple,
/// valid interval)`.
type TtEffects = (
    Vec<(usize, AtomId, Tuple, Interval)>,
    Vec<(usize, AtomId, Tuple, Interval)>,
);

fn effects_at(db: &Database, world: &SoakWorld, tt: u64) -> TtEffects {
    let types = [world.rec, world.job, world.part];
    let mut inserted = Vec::new();
    let mut closed = Vec::new();
    for (ti, &ty) in types.iter().enumerate() {
        for atom in db.all_atoms(ty).expect("atoms") {
            for v in db.history(atom).expect("history") {
                if v.tt.start().0 == tt {
                    inserted.push((ti, atom, v.tuple.clone(), v.vt));
                }
                if v.tt.end().0 == tt {
                    closed.push((ti, atom, v.tuple.clone(), v.vt));
                }
            }
        }
    }
    (inserted, closed)
}

/// Whether an in-doubt attempt's content fingerprint is present in the
/// durable effects of one transaction time. Returns `(matches, strong)`:
/// `strong` is true when the attempt carries unique content (fresh keys,
/// random values) rather than only close-side evidence (`DelRec`).
fn attempt_explains(world: &SoakWorld, ops: &[SoakOp], effects: &TtEffects) -> (bool, bool) {
    let (inserted, closed) = effects;
    let mut strong = false;
    for op in ops {
        let ok = match op {
            SoakOp::NewRec { key, val, vt } => {
                strong = true;
                inserted
                    .iter()
                    .any(|(ti, _, t, ivt)| *ti == 0 && *t == rec_tuple(*key, *val) && ivt == vt)
            }
            SoakOp::SetRec { idx, val, vt } => {
                strong = true;
                inserted.iter().any(|(ti, atom, t, ivt)| {
                    *ti == 0
                        && *atom == world.recs[*idx]
                        && *t == rec_tuple(*idx as i64, *val)
                        && ivt.covers(vt)
                })
            }
            SoakOp::NewJob { key } => {
                strong = true;
                inserted
                    .iter()
                    .any(|(ti, _, t, _)| *ti == 1 && *t == job_tuple(*key, 0))
            }
            SoakOp::Claim { key } => {
                strong = true;
                inserted
                    .iter()
                    .any(|(ti, _, t, _)| *ti == 1 && *t == job_tuple(*key, 1))
            }
            // A delete may have planned to nothing (empty overlap) and
            // its closes carry no unique content — evidence is optional.
            SoakOp::DelRec { .. } => true,
        };
        if !ok {
            return (false, strong);
        }
    }
    let _ = closed;
    (true, strong)
}

/// Picks the unique pending in-doubt attempt that the recovered store
/// proves committed at `tt`. Panics when resolution is ambiguous — with
/// unique keys and 20-bit random values, two distinct attempts matching
/// the same effects means the oracle itself is broken.
fn resolve_in_doubt(
    db: &Database,
    world: &SoakWorld,
    tt: u64,
    pending: &[(usize, Vec<SoakOp>)],
) -> usize {
    let effects = effects_at(db, world, tt);
    let mut strong_hits = Vec::new();
    let mut weak_hits = Vec::new();
    for (i, (_, ops)) in pending.iter().enumerate() {
        match attempt_explains(world, ops, &effects) {
            (true, true) => strong_hits.push(i),
            (true, false) => weak_hits.push(i),
            (false, _) => {}
        }
    }
    match (strong_hits.len(), weak_hits.len()) {
        (1, _) => strong_hits[0],
        (0, 1) => weak_hits[0],
        (s, w) => panic!(
            "in-doubt resolution at recovered tt {tt} is ambiguous: \
             {s} strong / {w} weak candidates among {} pending attempts",
            pending.len()
        ),
    }
}

/// One writer transaction for the actor's scenario. `Ok(Some(..))` was
/// committed and journaled by the caller; `Ok(None)` means the attempt
/// was a semantic no-op (empty queue, nothing to delete). `attempt` is
/// set to the op list just before `commit` is entered, so a commit-phase
/// error leaves the caller holding the (possibly durable) in-doubt ops.
fn writer_txn(
    ctx: &LegCtx<'_>,
    actor: &mut Actor,
    attempt: &mut Option<Vec<SoakOp>>,
) -> Result<Option<(u64, Vec<SoakOp>)>> {
    let world = ctx.world;
    let scenario = SCENARIOS[actor.scenario % SCENARIOS.len()];
    let mut ops: Vec<SoakOp> = Vec::new();
    let mut txn = ctx.db.begin();
    match scenario {
        "oltp" => {
            for _ in 0..1 + actor.rng.below(3) {
                let op = match actor.rng.below(6) {
                    0 => {
                        let key = actor.next_key;
                        actor.next_key += 1;
                        SoakOp::NewRec {
                            key,
                            val: actor.rng.below(1_000_000) as i64,
                            vt: live_vt(&mut actor.rng),
                        }
                    }
                    5 => SoakOp::DelRec {
                        idx: actor.rng.below(world.recs.len() as u64) as usize,
                        vt: live_vt(&mut actor.rng),
                    },
                    _ => SoakOp::SetRec {
                        idx: actor.rng.below(world.recs.len() as u64) as usize,
                        val: actor.rng.below(1_000_000) as i64,
                        vt: live_vt(&mut actor.rng),
                    },
                };
                apply_soak_op(&mut txn, world, &op)?;
                ops.push(op);
            }
        }
        "correct" => {
            // Retroactive corrections: rewrite history strictly below the
            // valid-time present (the archive-state warehousing pattern).
            let op = SoakOp::SetRec {
                idx: actor.rng.below(world.recs.len() as u64) as usize,
                val: actor.rng.below(1_000_000) as i64,
                vt: past_vt(&mut actor.rng),
            };
            apply_soak_op(&mut txn, world, &op)?;
            ops.push(op);
        }
        "queue" => {
            if actor.iter.is_multiple_of(2) {
                let key = actor.next_key;
                actor.next_key += 1;
                let op = SoakOp::NewJob { key };
                apply_soak_op(&mut txn, world, &op)?;
                ops.push(op);
            } else {
                match apply_soak_op(&mut txn, world, &SoakOp::Claim { key: 0 })? {
                    Some(key) => ops.push(SoakOp::Claim { key }),
                    None => {
                        txn.abort();
                        return Ok(None);
                    }
                }
            }
        }
        other => unreachable!("not a writer scenario: {other}"),
    }
    if txn.pending_ops() == 0 {
        // A delete over an empty extent nets to nothing; committing would
        // not draw a transaction time, so nothing may be journaled.
        txn.abort();
        return Ok(None);
    }
    *attempt = Some(ops.clone());
    let tt = txn.commit()?;
    *attempt = None;
    Ok(Some((tt.0, ops)))
}

/// One reader operation (analytical ASOF reads or a BOM explosion).
fn reader_op(ctx: &LegCtx<'_>, actor: &mut Actor) -> Result<()> {
    let world = ctx.world;
    let db = ctx.db;
    let now = db.now().0;
    let tt = TimePoint(actor.rng.below(now + 1));
    match SCENARIOS[actor.scenario % SCENARIOS.len()] {
        "asof" => {
            // Point ASOF-TT reads at a sampled past transaction time.
            for _ in 0..3 {
                let atom = world.recs[actor.rng.below(world.recs.len() as u64) as usize];
                let vs = db.versions_at(atom, tt)?;
                assert_nonoverlapping(&vs, "asof versions_at");
            }
            // Snapshot reads through a pinned view: per-atom fetches must
            // be coherent with the pinned published clock.
            let view = db.pin_view(world.rec);
            for _ in 0..3 {
                let atom = world.recs[actor.rng.below(world.recs.len() as u64) as usize];
                let vs = db.versions_at_view(atom, &view)?;
                assert_nonoverlapping(&vs, "asof view read");
            }
            // And a bitemporal point lookup.
            let atom = world.recs[actor.rng.below(world.recs.len() as u64) as usize];
            let vt = TimePoint(actor.rng.below(2 * VT_NOW));
            let _ = db.version_at(atom, tt, vt)?;
        }
        "bom" => {
            // Recursive explosion of the E10 assembly at a random
            // bitemporal point; the root may predate `tt`.
            let vt = TimePoint(actor.rng.below(2 * VT_NOW));
            let root = world.roots[actor.rng.below(world.roots.len() as u64) as usize];
            if let Some(m) = db.materialize(world.mol, root, tt, vt)? {
                assert!(m.size() >= 1, "materialized molecule without a root");
            }
        }
        other => unreachable!("not a reader scenario: {other}"),
    }
    Ok(())
}

fn run_actor(ctx: &LegCtx<'_>, actor: &mut Actor) {
    let is_writer = matches!(
        SCENARIOS[actor.scenario % SCENARIOS.len()],
        "oltp" | "correct" | "queue"
    );
    let (hist, count) = &ctx.instruments[actor.scenario % SCENARIOS.len()];
    while actor.remaining > 0 && !ctx.crashed.load(Ordering::Acquire) {
        let t0 = Instant::now();
        let mut attempt: Option<Vec<SoakOp>> = None;
        let r: Result<bool> = if is_writer {
            writer_txn(ctx, actor, &mut attempt).map(|committed| {
                if let Some((tt, ops)) = committed {
                    ctx.journal.lock().expect("journal poisoned").push((
                        tt,
                        actor.scenario % SCENARIOS.len(),
                        ops,
                    ));
                    true
                } else {
                    false
                }
            })
        } else {
            reader_op(ctx, actor).map(|()| true)
        };
        match r {
            Ok(did_work) => {
                actor.iter += 1;
                actor.remaining -= 1;
                if did_work {
                    hist.record(t0.elapsed().as_micros() as u64);
                    count.inc();
                }
            }
            Err(e) if is_wait_die_abort(&e) => {
                // Wait-die victim: nothing applied, nothing burned — retry.
                std::thread::yield_now();
            }
            Err(e) if ctx.faults_armed && is_crash(&e) => {
                if let Some(ops) = attempt.take() {
                    // The error surfaced inside `commit`: the WAL record
                    // may already be durable. Recovery decides its fate.
                    ctx.in_doubt
                        .lock()
                        .expect("in-doubt list poisoned")
                        .push((actor.scenario % SCENARIOS.len(), ops));
                }
                ctx.crashed.store(true, Ordering::Release);
                return;
            }
            Err(e) => panic!("soak actor failed outside a fault window: {e}"),
        }
    }
}

/// Everything a finished run hands to the oracle and the reporter.
pub struct SoakReport {
    /// The merged journal, sorted by transaction time.
    pub committed: Vec<CommittedTxn>,
    /// Power cuts that struck (each followed by recovery and resume).
    pub crashes: usize,
    /// Wall time of the whole run including recoveries.
    pub elapsed: std::time::Duration,
    /// Per-scenario instruments (`soak.ops` / `soak.latency_us`).
    pub metrics: tcom_core::MetricsSnapshot,
    /// Transaction time after seeding.
    pub base_tt: u64,
    /// Final published transaction time of the live engine.
    pub final_now: u64,
    /// The transaction times the slice oracle sampled.
    pub sample_tts: Vec<u64>,
    /// Canonical ASOF slices of the live engine at `sample_tts`.
    pub slices: Vec<String>,
    /// Compaction cycles the live engine completed (0 unless
    /// [`SoakConfig::compaction`] is set).
    pub compactions: u64,
}

fn soak_db_config(kind: StoreKind) -> DbConfig {
    DbConfig::default()
        .store_kind(kind)
        .buffer_frames(512)
        .checkpoint_interval(0)
        .sync_policy(SyncPolicy::OnCommit)
        .group_commit(true)
}

fn soak_dir(tag: &str) -> PathBuf {
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("tcom-soak-{}-{seq}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("soak dir");
    dir
}

/// Evenly sampled transaction times in `0..=now` (at most ~25 points,
/// always including `now` itself).
fn sample_points(now: u64) -> Vec<u64> {
    let step = (now / 24).max(1);
    let mut tts: Vec<u64> = (0..=now).step_by(step as usize).collect();
    if tts.last() != Some(&now) {
        tts.push(now);
    }
    tts
}

/// The canonical ASOF slice at each sampled transaction time: one line
/// per tt holding the sorted multiset of visible version contents across
/// all three types. Content-keyed — atom ids are excluded; the key
/// attribute carries identity.
fn sample_slices(db: &Database, world: &SoakWorld, tts: &[u64]) -> Vec<String> {
    let types = [world.rec, world.job, world.part];
    tts.iter()
        .map(|&tt| {
            let mut rows: Vec<String> = Vec::new();
            for (ti, &ty) in types.iter().enumerate() {
                for atom in db.all_atoms(ty).expect("atoms") {
                    for v in db.versions_at(atom, TimePoint(tt)).expect("versions") {
                        rows.push(format!("{ti}|{:?}|{:?}|{:?}", v.tuple, v.vt, v.tt));
                    }
                }
            }
            rows.sort();
            format!("tt={tt}::{}", rows.join(";"))
        })
        .collect()
}

/// Runs one live soak: seeding, actor legs, scheduled power cuts with
/// recovery-and-resume, then the slice sampling. Panics on any oracle
/// violation (committed prefix, reader invariants, unexpected errors).
pub fn run_soak(cfg: &SoakConfig) -> SoakReport {
    let dir = soak_dir(&format!("live-{}-{}", cfg.kind, cfg.seed));
    let vfs = FaultVfs::new();
    let registry = Registry::new();
    let instruments: Vec<(Histogram, Counter)> = SCENARIOS
        .iter()
        .map(|name| {
            (
                registry.histogram("soak.latency_us", name),
                registry.counter("soak.ops", name),
            )
        })
        .collect();
    let crash_count = registry.counter("soak.crashes", "");
    let vfs_handle: Arc<dyn tcom_core::Vfs> = Arc::new(vfs.clone());
    // The live engine may tier closed history in the background; the
    // replays never do, so the slice oracle compares a compacted engine
    // against uncompacted twins. Aggressive knobs make the thread fire
    // many cycles inside even a short run.
    let live_cfg = || {
        let c = soak_db_config(cfg.kind);
        if cfg.compaction {
            c.compaction(true)
                .compact_min_closed(16)
                .compact_interval_ms(5)
        } else {
            c
        }
    };

    let mut db = Arc::new(
        Database::open_with_vfs(&dir, live_cfg(), vfs_handle.clone()).expect("open soak db"),
    );
    let mut compactor = cfg.compaction.then(|| Compactor::spawn(db.clone()));
    let world = seed_world(&db, cfg).expect("seed world");

    let mut actors: Vec<Actor> = (0..cfg.actors)
        .map(|i| Actor {
            scenario: i % SCENARIOS.len(),
            rng: Rng::new(cfg.seed.wrapping_mul(1_000).wrapping_add(i as u64)),
            remaining: cfg.txns_per_actor,
            next_key: 1_000_000 * (i as i64 + 1),
            iter: 0,
        })
        .collect();

    let journal: Mutex<Vec<CommittedTxn>> = Mutex::new(Vec::new());
    let in_doubt: Mutex<Vec<(usize, Vec<SoakOp>)>> = Mutex::new(Vec::new());
    let mut crashes = 0usize;
    let mut cuts_left = cfg.power_cuts;
    let t0 = Instant::now();
    loop {
        if cuts_left > 0 {
            vfs.power_cut_at(vfs.mut_ops() + cfg.crash_op_spacing);
        }
        let crashed = AtomicBool::new(false);
        let ctx = LegCtx {
            db: db.as_ref(),
            world: &world,
            journal: &journal,
            in_doubt: &in_doubt,
            crashed: &crashed,
            faults_armed: cuts_left > 0,
            instruments: &instruments,
        };
        std::thread::scope(|s| {
            for actor in actors.iter_mut() {
                let ctx = &ctx;
                s.spawn(move || run_actor(ctx, actor));
            }
        });
        if vfs.crashed() {
            // Power cut: discard the in-memory engine without its shutdown
            // checkpoint, "reboot the disk", and recover from WAL.
            crashes += 1;
            crash_count.inc();
            cuts_left -= 1;
            // Stop (and join) the compactor first: it holds the only other
            // engine handle, and a cut may have struck mid-compaction —
            // recovery must land on the pre- or post-swap image either way.
            drop(compactor.take());
            Arc::try_unwrap(db)
                .ok()
                .expect("compactor joined; sole engine handle remains")
                .crash();
            vfs.reset_after_crash();
            db = Arc::new(
                Database::open_with_vfs(&dir, live_cfg(), vfs_handle.clone())
                    .expect("reopen after power cut"),
            );
            compactor = cfg.compaction.then(|| Compactor::spawn(db.clone()));
            // Committed-prefix oracle: every transaction whose commit was
            // *reported* must survive, and every recovered tt above the
            // journal must be accounted for by an in-doubt commit attempt
            // (one whose `commit` call errored after the power cut — its
            // WAL record may have been made durable by the group-commit
            // fsync before the fault surfaced). Resolution matches each
            // unexplained tt against the unique attempt whose content
            // fingerprint (keys, values) the recovered store carries.
            {
                let mut j = journal.lock().expect("journal poisoned");
                let max_tt = j.iter().map(|c| c.0).max().unwrap_or(world.base_tt);
                let now_tt = db.now().0;
                assert!(
                    now_tt >= max_tt,
                    "durability violation: reported commit tt {max_tt} lost \
                     (recovered clock {now_tt})"
                );
                // An in-doubt tt is not necessarily above the journal max:
                // a younger commit can succeed (all its pages resident)
                // while an older one errors on post-fsync I/O, leaving a
                // gap *inside* the journaled range. Resolve every gap.
                let journaled: std::collections::HashSet<u64> = j.iter().map(|c| c.0).collect();
                let mut pending =
                    std::mem::take(&mut *in_doubt.lock().expect("in-doubt list poisoned"));
                for tt in world.base_tt + 1..=now_tt {
                    if journaled.contains(&tt) {
                        continue;
                    }
                    let i = resolve_in_doubt(&db, &world, tt, &pending);
                    let (scenario, ops) = pending.remove(i);
                    j.push((tt, scenario, ops));
                }
                // Whatever remains was torn away before durability — a
                // cleanly failed commit; nothing to journal.
            }
            assert!(
                db.verify_integrity().expect("integrity sweep").is_ok(),
                "recovered store failed the integrity sweep"
            );
            continue;
        }
        break;
    }
    // Never-struck cuts must not ambush the shutdown checkpoint.
    vfs.set_schedule(FaultSchedule::default());
    let elapsed = t0.elapsed();

    // Force one last archival sweep so the sampled slices are guaranteed
    // to read through segments regardless of background timing — the
    // replay oracle then compares a tiered engine against flat twins.
    if cfg.compaction {
        drop(compactor.take());
        db.compact_all().expect("final compaction sweep");
    }
    let compactions = if cfg.compaction {
        db.metrics().counter("segment.compactions")
    } else {
        0
    };

    let mut committed = journal.into_inner().expect("journal poisoned");
    committed.sort_by_key(|c| c.0);
    let final_now = db.now().0;
    let sample_tts = sample_points(final_now);
    let slices = sample_slices(&db, &world, &sample_tts);
    drop(compactor);
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);

    SoakReport {
        committed,
        crashes,
        elapsed,
        metrics: registry.snapshot(),
        base_tt: world.base_tt,
        final_now,
        sample_tts,
        slices,
        compactions,
    }
}

/// Serially replays a journal on a fresh engine of `kind`, asserting the
/// model draws the live run's transaction times and claims the live run's
/// rows, and returns its sampled slices.
fn replay_slices(cfg: &SoakConfig, kind: StoreKind, report: &SoakReport) -> Vec<String> {
    let dir = soak_dir(&format!("replay-{kind}-{}", cfg.seed));
    let vfs: std::sync::Arc<dyn tcom_core::Vfs> = std::sync::Arc::new(FaultVfs::new());
    let db = Database::open_with_vfs(&dir, soak_db_config(kind), vfs).expect("open replay db");
    let world = seed_world(&db, cfg).expect("seed replay world");
    assert_eq!(
        world.base_tt, report.base_tt,
        "replay seeding must draw the live run's base transaction time"
    );
    for (tt, _, ops) in &report.committed {
        let mut txn = db.begin();
        for op in ops {
            let claimed = apply_soak_op(&mut txn, &world, op)
                .expect("journaled op must re-apply in serial replay");
            if let SoakOp::Claim { key } = op {
                assert_eq!(
                    claimed,
                    Some(*key),
                    "serial replay must claim the live run's row"
                );
            }
        }
        assert!(txn.pending_ops() > 0, "journaled txn replayed to a no-op");
        let got = txn.commit().expect("replay commit");
        assert_eq!(got.0, *tt, "replay must draw the live run's commit tt");
    }
    assert_eq!(db.now().0, report.final_now, "replay clock mismatch");
    let slices = sample_slices(&db, &world, &report.sample_tts);
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    slices
}

/// The post-run invariant oracle: the journal's transaction times are
/// consecutive above the seed, and a serial replay on **each of the three
/// store kinds** draws identical transaction times and produces ASOF
/// slices byte-identical to the live engine's at every sampled timestamp.
pub fn verify_soak(cfg: &SoakConfig, report: &SoakReport) {
    for (i, c) in report.committed.iter().enumerate() {
        assert_eq!(
            c.0,
            report.base_tt + 1 + i as u64,
            "seed {} kind {}: journaled transaction times must be consecutive above the seed (crashes: {})",
            cfg.seed,
            cfg.kind,
            report.crashes
        );
    }
    for kind in [StoreKind::Chain, StoreKind::Delta, StoreKind::Split] {
        let slices = replay_slices(cfg, kind, report);
        assert_eq!(
            slices.len(),
            report.slices.len(),
            "{kind}: sampled slice count diverged"
        );
        for (got, want) in slices.iter().zip(&report.slices) {
            assert_eq!(got, want, "{kind}: ASOF slice diverged from live run");
        }
    }
}

/// E17 — the mixed-workload soak: per-scenario throughput and latency
/// under fault injection, gated by the replay oracle.
pub fn e17_soak(s: crate::experiments::Scale) -> Table {
    let mut t = Table::new(
        "E17",
        "mixed-workload soak: per-scenario throughput and tail latency \
         (2 power cuts + recovery, background compaction, oracle-verified)",
        &["scenario", "ops", "ops/s", "p50 µs", "p95 µs", "p99 µs"],
        "writers commit at OLTP rates while analytical readers stay \
         unblocked on pinned snapshots; the queue consumer drains in \
         insertion order; both power cuts recover to the exact committed \
         prefix — even when they strike mid-compaction — and the serial \
         replay (never compacting) reproduces every transaction time and \
         ASOF slice of the tiered live engine on all three store kinds",
    );
    let cfg = SoakConfig {
        seed: 1742,
        kind: StoreKind::Split,
        actors: 5,
        txns_per_actor: s.n(320),
        rec_atoms: s.n(64),
        bom_fanout: 3,
        bom_depth: 3,
        power_cuts: 2,
        crash_op_spacing: s.n(480) as u64,
        compaction: true,
    };
    let report = run_soak(&cfg);
    verify_soak(&cfg, &report);
    assert!(
        report.crashes >= 1,
        "E17 must exercise at least one power cut + recovery"
    );
    assert!(
        report.compactions >= 1,
        "E17 runs with tiering on: the live engine must have archived \
         closed history before the slice oracle sampled it"
    );
    let secs = report.elapsed.as_secs_f64();
    for name in SCENARIOS {
        let ops = report.metrics.counter_labeled("soak.ops", name);
        let h = report
            .metrics
            .histogram_labeled("soak.latency_us", name)
            .expect("per-scenario latency histogram");
        t.row(vec![
            name.to_string(),
            format!("{ops}"),
            format!("{:.0}", ops as f64 / secs),
            format!("{}", h.percentile(0.5)),
            format!("{}", h.percentile(0.95)),
            format!("{}", h.percentile(0.99)),
        ]);
    }
    t.row(vec![
        "recover".into(),
        format!("{}", report.crashes),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    t.set_metrics(serde_json::json!({
        "committed_txns": report.committed.len(),
        "final_tt": report.final_now,
        "crashes": report.crashes,
        "sampled_slices": report.sample_tts.len(),
        "compactions": report.compactions,
    }));
    t
}
