//! The evaluation harness: regenerates every table and figure of the
//! reconstructed evaluation (see EXPERIMENTS.md).
//!
//! ```text
//! cargo run -p tcom-bench --release --bin harness            # full scale
//! cargo run -p tcom-bench --release --bin harness -- --quick # smoke run
//! cargo run -p tcom-bench --release --bin harness -- E1 E7   # a subset
//! ```
//!
//! Results print as tables and are also written as JSON to
//! `bench_results.json` in the current directory. A filtered run at the
//! same scale *merges* into the existing file — re-run tables replace
//! their previous versions in place, everything else is preserved — so a
//! single experiment can be refreshed without regenerating the suite.

use serde_json::Value;
use tcom_bench::experiments::{self, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let filter: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| {
            // `harness soak` is the documented alias for the E17 soak run.
            let up = a.to_ascii_uppercase();
            if up == "SOAK" {
                "E17".to_string()
            } else {
                up
            }
        })
        .collect();
    let scale = if quick { Scale::quick() } else { Scale::full() };
    let scale_name = if quick { "quick" } else { "full" };
    eprintln!(
        "tcom evaluation harness — scale {}",
        if quick { "quick (÷8)" } else { "full" }
    );

    type Experiment = fn(Scale) -> tcom_bench::measure::Table;
    let all: Vec<(&str, Experiment)> = vec![
        ("E1", experiments::e1_current_access),
        ("E2", experiments::e2_past_timeslice),
        ("E3", experiments::e3_update_cost),
        ("E4", experiments::e4_storage_consumption),
        ("E5", experiments::e5_molecule_timeslice),
        ("E6", experiments::e6_history_query),
        ("E7", experiments::e7_access_paths),
        ("E8", experiments::e8_bitemporal_matrix),
        ("E9", experiments::e9_buffer_sensitivity),
        ("E10", experiments::e10_bom_explosion),
        ("E11", experiments::e11_recovery),
        ("E11B", experiments::e11b_checkpoint_tradeoff),
        ("E12", experiments::e12_algebra),
        ("E13", experiments::e13_parallel_scaling),
        ("E14", experiments::e14_explain_io),
        ("E15", experiments::e15_time_index),
        ("E16", experiments::e16_group_commit),
        ("E17", tcom_bench::soak::e17_soak),
        ("E18", experiments::e18_planner),
        ("E19", experiments::e19_wire_throughput),
        ("E20", experiments::e20_replication),
        ("E21", experiments::e21_tiered_slice),
        ("A1", experiments::a1_delta_granularity),
        ("A2", experiments::a2_directory),
    ];

    let mut results = Vec::new();
    for (id, f) in &all {
        if !filter.is_empty() && !filter.iter().any(|x| x == id) {
            continue;
        }
        eprintln!("running {id}…");
        let t0 = std::time::Instant::now();
        let table = f(scale);
        eprintln!("  {id} done in {:.1}s", t0.elapsed().as_secs_f64());
        print!("{}", table.render());
        results.push(table.to_json());
    }

    // Merge with any previous same-scale results: tables re-run now win;
    // tables not in this run carry over, ordered by the experiment list.
    let previous = prior_tables("bench_results.json", scale_name);
    let fresh_ids: Vec<String> = results
        .iter()
        .map(|t| id_of(t).to_ascii_uppercase())
        .collect();
    let mut merged = Vec::new();
    for (id, _) in &all {
        if let Some(pos) = fresh_ids.iter().position(|f| f == id) {
            merged.push(results[pos].clone());
        } else if let Some(old) = previous.iter().find(|t| id_of(t).eq_ignore_ascii_case(id)) {
            merged.push(old.clone());
        }
    }

    let json = serde_json::json!({ "scale": scale_name, "tables": merged });
    std::fs::write(
        "bench_results.json",
        serde_json::to_string_pretty(&json).expect("json"),
    )
    .expect("write bench_results.json");
    eprintln!("\nwrote bench_results.json");
}

fn id_of(table: &Value) -> &str {
    match &table["id"] {
        Value::String(s) => s,
        _ => "",
    }
}

/// Previously recorded tables, if the file exists, parses, and was
/// recorded at the same scale (mixing quick and full rows would make the
/// file lie about its provenance).
fn prior_tables(path: &str, scale_name: &str) -> Vec<Value> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let Ok(doc) = serde_json::from_str(&text) else {
        eprintln!("warning: existing {path} is not valid JSON; starting fresh");
        return Vec::new();
    };
    if doc["scale"] != scale_name {
        eprintln!("warning: existing {path} has a different scale; starting fresh");
        return Vec::new();
    }
    match &doc["tables"] {
        Value::Array(tables) => tables.clone(),
        _ => Vec::new(),
    }
}
