//! # tcom-bench
//!
//! Workload generators ([`workloads`]) and measurement/reporting helpers
//! ([`measure`]) for the reconstructed evaluation of the paper. The
//! `harness` binary regenerates every table and figure (see
//! EXPERIMENTS.md); the criterion benches in `benches/` provide
//! statistically rigorous micro-measurements of the same experiments.

#![warn(missing_docs)]

pub mod experiments;
pub mod measure;
pub mod soak;
pub mod workloads;
