//! Measurement and reporting helpers for the benchmark harness.

use std::time::Instant;

/// Timing statistics over repeated runs.
#[derive(Clone, Copy, Debug, Default)]
pub struct Timing {
    /// Number of measured operations.
    pub n: usize,
    /// Mean latency in microseconds.
    pub mean_us: f64,
    /// Median latency in microseconds.
    pub p50_us: f64,
    /// 95th-percentile latency in microseconds.
    pub p95_us: f64,
}

impl Timing {
    /// Throughput in operations per second implied by the mean.
    pub fn ops_per_sec(&self) -> f64 {
        if self.mean_us == 0.0 {
            f64::INFINITY
        } else {
            1_000_000.0 / self.mean_us
        }
    }
}

/// Runs `f` once per iteration, timing each call individually.
pub fn time_each<T>(iters: usize, mut f: impl FnMut(usize) -> T) -> Timing {
    let mut samples = Vec::with_capacity(iters);
    for i in 0..iters {
        let t0 = Instant::now();
        let out = f(i);
        samples.push(t0.elapsed().as_nanos() as f64 / 1000.0);
        std::hint::black_box(out);
    }
    summarize(samples)
}

/// Times one batch call and divides by `ops` (for very fast operations).
pub fn time_batch<T>(ops: usize, f: impl FnOnce() -> T) -> Timing {
    let t0 = Instant::now();
    let out = f();
    std::hint::black_box(out);
    let total_us = t0.elapsed().as_nanos() as f64 / 1000.0;
    let per = total_us / ops.max(1) as f64;
    Timing {
        n: ops,
        mean_us: per,
        p50_us: per,
        p95_us: per,
    }
}

fn summarize(mut samples: Vec<f64>) -> Timing {
    if samples.is_empty() {
        return Timing::default();
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = samples.len();
    let mean = samples.iter().sum::<f64>() / n as f64;
    let pct = |p: f64| samples[((n as f64 * p) as usize).min(n - 1)];
    Timing {
        n,
        mean_us: mean,
        p50_us: pct(0.50),
        p95_us: pct(0.95),
    }
}

/// A printable results table (also serialized to JSON by the harness).
pub struct Table {
    /// Experiment id, e.g. "E1".
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows (pre-formatted cells).
    pub rows: Vec<Vec<String>>,
    /// Expected shape, printed under the table and recorded in
    /// EXPERIMENTS.md.
    pub expectation: String,
    /// Optional metrics-registry snapshot (serialized), emitted alongside
    /// the timings in `bench_results.json`.
    pub metrics: Option<serde_json::Value>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, header: &[&str], expectation: &str) -> Table {
        Table {
            id: id.into(),
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            expectation: expectation.into(),
            metrics: None,
        }
    }

    /// Attaches a metrics snapshot to serialize with the table.
    pub fn set_metrics(&mut self, snapshot: serde_json::Value) {
        self.metrics = Some(snapshot);
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity");
        self.rows.push(cells);
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} — {} ==\n", self.id, self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out.push_str(&format!("expected shape: {}\n", self.expectation));
        out
    }

    /// Serializes to a JSON object via `serde_json`.
    pub fn to_json(&self) -> serde_json::Value {
        let mut v = serde_json::json!({
            "id": self.id,
            "title": self.title,
            "header": self.header,
            "rows": self.rows,
            "expectation": self.expectation,
        });
        if let (serde_json::Value::Object(fields), Some(m)) = (&mut v, &self.metrics) {
            fields.push(("metrics".to_string(), m.clone()));
        }
        v
    }
}

/// Formats a microsecond value compactly.
pub fn us(v: f64) -> String {
    if v >= 10_000.0 {
        format!("{:.1}ms", v / 1000.0)
    } else {
        format!("{v:.1}µs")
    }
}

/// Formats a byte count compactly.
pub fn bytes(v: u64) -> String {
    if v >= 10 * 1024 * 1024 {
        format!("{:.1}MiB", v as f64 / (1024.0 * 1024.0))
    } else if v >= 10 * 1024 {
        format!("{:.1}KiB", v as f64 / 1024.0)
    } else {
        format!("{v}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_summary() {
        let t = time_each(50, |i| i * 2);
        assert_eq!(t.n, 50);
        assert!(t.mean_us >= 0.0);
        assert!(t.p50_us <= t.p95_us);
        assert!(t.ops_per_sec() > 0.0);
    }

    #[test]
    fn batch_timing() {
        let t = time_batch(100, || (0..100).sum::<usize>());
        assert_eq!(t.n, 100);
        assert!(t.mean_us >= 0.0);
    }

    #[test]
    fn table_render_and_json() {
        let mut t = Table::new("E0", "demo", &["a", "bb"], "flat");
        t.row(vec!["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("E0"));
        assert!(s.contains("expected shape: flat"));
        let j = t.to_json();
        assert_eq!(j["id"], "E0");
        assert_eq!(j["rows"][0][1], "2");
        assert_eq!(j["metrics"], serde_json::Value::Null);
        t.set_metrics(serde_json::json!({ "counters": Vec::<serde_json::Value>::new() }));
        let j = t.to_json();
        assert_eq!(j["metrics"]["counters"], serde_json::Value::Array(vec![]));
    }

    #[test]
    fn formatting() {
        assert_eq!(us(5.0), "5.0µs");
        assert_eq!(us(50_000.0), "50.0ms");
        assert_eq!(bytes(100), "100B");
        assert!(bytes(100_000).ends_with("KiB"));
        assert!(bytes(100_000_000).ends_with("MiB"));
    }
}
