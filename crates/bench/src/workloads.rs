//! Workload generators shared by the benchmark harness, the criterion
//! benches and the examples.

use rand::prelude::*;
use std::path::PathBuf;
use tcom_core::{
    AtomId, AttrDef, DataType, Database, DbConfig, MoleculeEdge, StoreKind, Tuple, Value,
};
use tcom_kernel::time::Interval;
use tcom_kernel::{AttrId, MoleculeTypeId, Result, TimePoint};

/// The standard bench configuration: benchmark-friendly checkpoint and
/// sync behavior on top of the given store kind and buffer size.
pub fn bench_config(kind: StoreKind, frames: usize) -> DbConfig {
    DbConfig::default()
        .store_kind(kind)
        .buffer_frames(frames)
        .checkpoint_interval(0)
        .sync_policy(tcom_core::SyncPolicy::OnCheckpoint)
}

/// Creates a fresh database directory under the system temp dir.
pub fn fresh_db(tag: &str, kind: StoreKind, frames: usize) -> (Database, PathBuf) {
    fresh_db_with(tag, bench_config(kind, frames))
}

/// Like [`fresh_db`] but with a fully explicit configuration (scaling
/// experiments vary the shard and worker knobs too).
///
/// The directory name carries a per-process monotonic counter in addition
/// to the pid and tag: two `fresh_db` calls with the same tag (repeated
/// harness runs in one process, or a test and the experiment it drives)
/// must never silently reuse — and wipe — each other's directory.
pub fn fresh_db_with(tag: &str, config: DbConfig) -> (Database, PathBuf) {
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("tcom-bench-{}-{seq}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = Database::open(&dir, config).expect("open bench db");
    (db, dir)
}

/// Reopens an existing bench database with a different buffer size.
pub fn reopen_db(dir: &PathBuf, kind: StoreKind, frames: usize) -> Database {
    reopen_db_with(dir, bench_config(kind, frames))
}

/// Like [`reopen_db`] but with a fully explicit configuration.
pub fn reopen_db_with(dir: &PathBuf, config: DbConfig) -> Database {
    Database::open(dir, config).expect("reopen bench db")
}

/// Removes a bench database directory.
pub fn cleanup(dir: &PathBuf) {
    let _ = std::fs::remove_dir_all(dir);
}

/// A synthetic versioned-record workload: one atom type with `width` INT
/// attributes (attribute 0 indexed), `n_atoms` atoms, and a history of
/// uniformly random updates that change `changed_attrs` attributes each.
pub struct Synthetic {
    /// The atom type.
    pub ty: tcom_kernel::AtomTypeId,
    /// All atom ids.
    pub atoms: Vec<AtomId>,
    /// Tuple width.
    pub width: usize,
}

impl Synthetic {
    /// Defines the schema and inserts `n_atoms` atoms (one commit).
    pub fn create(db: &Database, n_atoms: usize, width: usize) -> Result<Synthetic> {
        let attrs: Vec<AttrDef> = (0..width)
            .map(|i| {
                let a = AttrDef::new(format!("a{i}"), DataType::Int);
                if i == 0 {
                    a.indexed()
                } else {
                    a
                }
            })
            .collect();
        let ty = db.define_atom_type("syn", attrs)?;
        let mut atoms = Vec::with_capacity(n_atoms);
        // Insert in batches to bound transaction size.
        for chunk in (0..n_atoms).collect::<Vec<_>>().chunks(1000) {
            let mut txn = db.begin();
            for &i in chunk {
                atoms.push(txn.insert_atom(
                    ty,
                    Interval::all(),
                    Self::tuple_of(width, i as i64, 0),
                )?);
            }
            txn.commit()?;
        }
        Ok(Synthetic { ty, atoms, width })
    }

    /// The canonical tuple: attribute 0 is `key`, attribute `1..changed+1`
    /// carry `round`, the rest are constant.
    pub fn tuple_of(width: usize, key: i64, round: i64) -> Tuple {
        Tuple::new(
            (0..width)
                .map(|i| {
                    if i == 0 {
                        Value::Int(key)
                    } else if i == 1 {
                        Value::Int(round)
                    } else {
                        Value::Int(i as i64 * 1000)
                    }
                })
                .collect(),
        )
    }

    /// A tuple where `changed` attributes (starting at 1) differ per round.
    pub fn wide_change_tuple(width: usize, key: i64, round: i64, changed: usize) -> Tuple {
        Tuple::new(
            (0..width)
                .map(|i| {
                    if i == 0 {
                        Value::Int(key)
                    } else if i >= 1 && i <= changed {
                        Value::Int(round * 31 + i as i64)
                    } else {
                        Value::Int(i as i64 * 1000)
                    }
                })
                .collect(),
        )
    }

    /// Applies `total_updates` updates to uniformly random atoms, changing
    /// `changed` attributes each, in transactions of `batch` updates.
    pub fn random_updates(
        &self,
        db: &Database,
        total_updates: usize,
        changed: usize,
        batch: usize,
        seed: u64,
    ) -> Result<()> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut done = 0usize;
        let mut round = 1i64;
        while done < total_updates {
            let n = batch.min(total_updates - done);
            let mut txn = db.begin();
            for _ in 0..n {
                let idx = rng.gen_range(0..self.atoms.len());
                txn.update(
                    self.atoms[idx],
                    Interval::all(),
                    Self::wide_change_tuple(self.width, idx as i64, round, changed),
                )?;
                round += 1;
            }
            txn.commit()?;
            done += n;
        }
        Ok(())
    }

    /// Applies exactly `rounds` updates to *every* atom (history length
    /// becomes `rounds + 1`), interleaved randomly across atoms per round.
    pub fn uniform_history(
        &self,
        db: &Database,
        rounds: usize,
        changed: usize,
        seed: u64,
    ) -> Result<()> {
        let mut rng = StdRng::seed_from_u64(seed);
        for r in 1..=rounds {
            let mut order: Vec<usize> = (0..self.atoms.len()).collect();
            order.shuffle(&mut rng);
            for chunk in order.chunks(1000) {
                let mut txn = db.begin();
                for &idx in chunk {
                    txn.update(
                        self.atoms[idx],
                        Interval::all(),
                        Self::wide_change_tuple(self.width, idx as i64, r as i64, changed),
                    )?;
                }
                txn.commit()?;
            }
        }
        Ok(())
    }
}

/// The university workload: departments employing employees working on
/// projects — the classic complex-object schema.
pub struct University {
    /// `dept` type id.
    pub dept: tcom_kernel::AtomTypeId,
    /// `emp` type id.
    pub emp: tcom_kernel::AtomTypeId,
    /// `proj` type id.
    pub proj: tcom_kernel::AtomTypeId,
    /// The `dept_mol` molecule (dept → emp → proj).
    pub mol: MoleculeTypeId,
    /// Department atoms.
    pub depts: Vec<AtomId>,
    /// Employee atoms.
    pub emps: Vec<AtomId>,
    /// Project atoms.
    pub projs: Vec<AtomId>,
}

impl University {
    /// Builds `n_depts` departments × `emps_per_dept` employees ×
    /// `projs_per_emp` projects (projects drawn from a shared pool of
    /// `n_depts * emps_per_dept` projects).
    pub fn create(
        db: &Database,
        n_depts: usize,
        emps_per_dept: usize,
        projs_per_emp: usize,
        seed: u64,
    ) -> Result<University> {
        let proj = db.define_atom_type(
            "proj",
            vec![
                AttrDef::new("title", DataType::Text),
                AttrDef::new("budget", DataType::Int).indexed(),
            ],
        )?;
        let emp = db.define_atom_type(
            "emp",
            vec![
                AttrDef::new("name", DataType::Text).not_null(),
                AttrDef::new("salary", DataType::Int).indexed(),
                AttrDef::new("works_on", DataType::RefSet(proj)),
            ],
        )?;
        let dept = db.define_atom_type(
            "dept",
            vec![
                AttrDef::new("name", DataType::Text).not_null(),
                AttrDef::new("budget", DataType::Int).indexed(),
                AttrDef::new("employs", DataType::RefSet(emp)),
            ],
        )?;
        let mol = db.define_molecule_type(
            "dept_mol",
            dept,
            vec![
                MoleculeEdge {
                    from: dept,
                    attr: AttrId(2),
                    to: emp,
                },
                MoleculeEdge {
                    from: emp,
                    attr: AttrId(2),
                    to: proj,
                },
            ],
            None,
        )?;

        let mut rng = StdRng::seed_from_u64(seed);
        let n_projs = (n_depts * emps_per_dept).max(projs_per_emp);
        let mut projs = Vec::new();
        for chunk in (0..n_projs).collect::<Vec<_>>().chunks(1000) {
            let mut txn = db.begin();
            for &i in chunk {
                projs.push(txn.insert_atom(
                    proj,
                    Interval::all(),
                    Tuple::new(vec![
                        Value::from(format!("proj-{i}")),
                        Value::Int(rng.gen_range(10..1000)),
                    ]),
                )?);
            }
            txn.commit()?;
        }
        let mut emps = Vec::new();
        let mut depts = Vec::new();
        for d in 0..n_depts {
            let mut txn = db.begin();
            let mut members = Vec::new();
            for e in 0..emps_per_dept {
                let mut works: Vec<AtomId> = Vec::new();
                for _ in 0..projs_per_emp {
                    works.push(projs[rng.gen_range(0..projs.len())]);
                }
                let id = txn.insert_atom(
                    emp,
                    Interval::all(),
                    Tuple::new(vec![
                        Value::from(format!("emp-{d}-{e}")),
                        Value::Int(rng.gen_range(30..300) * 10),
                        Value::ref_set(works),
                    ]),
                )?;
                members.push(id);
                emps.push(id);
            }
            depts.push(txn.insert_atom(
                dept,
                Interval::all(),
                Tuple::new(vec![
                    Value::from(format!("dept-{d}")),
                    Value::Int(rng.gen_range(100..10_000)),
                    Value::ref_set(members),
                ]),
            )?);
            txn.commit()?;
        }
        Ok(University {
            dept,
            emp,
            proj,
            mol,
            depts,
            emps,
            projs,
        })
    }

    /// Applies `rounds` of personnel churn: every round gives a random 10 %
    /// of employees a raise and moves a random 2 % between departments.
    pub fn churn(&self, db: &Database, rounds: usize, seed: u64) -> Result<()> {
        let mut rng = StdRng::seed_from_u64(seed);
        for r in 0..rounds {
            let mut txn = db.begin();
            let raises = (self.emps.len() / 10).max(1);
            for _ in 0..raises {
                let e = self.emps[rng.gen_range(0..self.emps.len())];
                if let Some(mut t) = txn.current_tuple(e, TimePoint(0))? {
                    let Value::Int(s) = t.get(1).clone() else {
                        continue;
                    };
                    t.set(1, Value::Int(s + 10 + r as i64));
                    txn.update(e, Interval::all(), t)?;
                }
            }
            txn.commit()?;
        }
        Ok(())
    }
}

/// The CAD bill-of-materials workload: a recursive `part` type.
pub struct Bom {
    /// The `part` type.
    pub part: tcom_kernel::AtomTypeId,
    /// The `bom` molecule type (part → part over `components`).
    pub mol: MoleculeTypeId,
    /// Root assemblies.
    pub roots: Vec<AtomId>,
    /// Every part.
    pub parts: Vec<AtomId>,
}

impl Bom {
    /// Builds `n_roots` assemblies as complete `fanout`-ary trees of the
    /// given `depth` (leaves at depth 1).
    pub fn create(db: &Database, n_roots: usize, fanout: usize, depth: usize) -> Result<Bom> {
        let part = db.define_atom_type(
            "part",
            vec![
                AttrDef::new("name", DataType::Text).not_null(),
                AttrDef::new("mass", DataType::Int),
                AttrDef::new("components", DataType::RefSet(tcom_kernel::AtomTypeId(0))),
            ],
        )?;
        let mol = db.define_molecule_type(
            "bom",
            part,
            vec![MoleculeEdge {
                from: part,
                attr: AttrId(2),
                to: part,
            }],
            Some(depth as u32 + 1),
        )?;
        let mut parts = Vec::new();
        let mut roots = Vec::new();
        for r in 0..n_roots {
            let mut txn = db.begin();
            let root = build_tree(
                &mut txn,
                part,
                &mut parts,
                &format!("asm{r}"),
                fanout,
                depth,
            )?;
            roots.push(root);
            txn.commit()?;
        }
        Ok(Bom {
            part,
            mol,
            roots,
            parts,
        })
    }

    /// Applies `n` engineering changes: random parts get a new mass.
    pub fn engineering_changes(&self, db: &Database, n: usize, seed: u64) -> Result<()> {
        let mut rng = StdRng::seed_from_u64(seed);
        for chunk_start in (0..n).step_by(500) {
            let mut txn = db.begin();
            for _ in 0..(500.min(n - chunk_start)) {
                let p = self.parts[rng.gen_range(0..self.parts.len())];
                if let Some(mut t) = txn.current_tuple(p, TimePoint(0))? {
                    t.set(1, Value::Int(rng.gen_range(1..100_000)));
                    txn.update(p, Interval::all(), t)?;
                }
            }
            txn.commit()?;
        }
        Ok(())
    }
}

fn build_tree(
    txn: &mut tcom_core::Txn<'_>,
    part: tcom_kernel::AtomTypeId,
    parts: &mut Vec<AtomId>,
    name: &str,
    fanout: usize,
    depth: usize,
) -> Result<AtomId> {
    let children: Vec<AtomId> = if depth <= 1 {
        Vec::new()
    } else {
        (0..fanout)
            .map(|i| build_tree(txn, part, parts, &format!("{name}.{i}"), fanout, depth - 1))
            .collect::<Result<_>>()?
    };
    let id = txn.insert_atom(
        part,
        Interval::all(),
        Tuple::new(vec![
            Value::from(name),
            Value::Int(depth as i64 * 100),
            Value::ref_set(children),
        ]),
    )?;
    parts.push(id);
    Ok(id)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression: same tag + same pid used to map to the same directory,
    /// so a second `fresh_db` silently wiped the first one's files while
    /// it was still open.
    #[test]
    fn fresh_db_same_tag_never_collides() {
        let (db1, d1) = fresh_db("collide", StoreKind::Split, 64);
        let syn = Synthetic::create(&db1, 4, 2).expect("seed first db");
        let (db2, d2) = fresh_db("collide", StoreKind::Split, 64);
        assert_ne!(d1, d2, "same tag must yield distinct directories");
        // The first database is still fully usable after the second open.
        let got = db1
            .current_tuple(syn.atoms[0], TimePoint(0))
            .expect("first db survives");
        assert!(got.is_some());
        drop(db2);
        db1.checkpoint().expect("first db checkpoints");
        cleanup(&d1);
        cleanup(&d2);
    }
}
