//! The buffer manager: a fixed pool of page frames shared by every file of
//! the database, organised as a **sharded, lock-striped** pool with
//! per-shard clock (second-chance) replacement.
//!
//! * Pages are addressed by `(FileId, PageId)`; files register their
//!   [`DiskManager`] with the pool.
//! * The frame array is partitioned into a power-of-two number of shards.
//!   Each shard owns a contiguous slice of frames and a private mutex over
//!   its mapping (`(file, page) → frame`) and clock hand, so fetches of
//!   pages that hash to different shards never contend. Frame *content* is
//!   protected by a per-frame `RwLock<Page>` latch.
//! * Latching order is **shard lock → frame latch**, never the reverse.
//!   A miss holds its shard lock across the victim write-back and the page
//!   load, and publishes the mapping only *after* the load succeeded —
//!   a key is never visible in the table while its frame holds stale
//!   bytes, so a concurrent fetch can never pin a half-loaded frame, and a
//!   failed load leaves the frame unmapped with nothing to uninstall.
//! * [`BufferPool::fetch_read`] / [`BufferPool::fetch_write`] return RAII
//!   guards that pin the frame; unpinning happens on drop. Pinned frames
//!   are never evicted (pins are only granted under the shard lock).
//! * Write guards mark the frame dirty; dirty frames are written back on
//!   eviction ("steal") and by [`BufferPool::flush_all`]. Crash consistency
//!   is the WAL's job (logical, idempotent redo), so stealing is safe.
//! * The pool counts hits, misses, evictions and write-backs in lock-free
//!   atomics — the currency of experiments E9 (buffer-size sensitivity)
//!   and E13 (parallel scaling); [`BufferPool::stats`] takes no lock.

use crate::disk::DiskManager;
use crate::page::{Page, PageKind};
use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use tcom_kernel::{Error, PageId, Result};

/// Identifies a registered file within the pool.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FileId(pub u32);

type Key = (FileId, PageId);

/// Shards get at least this many frames each; pools smaller than twice
/// this run single-sharded (exactly the pre-striping semantics).
const MIN_FRAMES_PER_SHARD: usize = 64;

/// Upper bound on the shard count (diminishing returns past the core
/// count; keeps per-shard frame slices large enough for the clock to work).
const MAX_SHARDS: usize = 64;

struct Frame {
    page: RwLock<Page>,
    pin: AtomicU32,
    dirty: AtomicBool,
    refbit: AtomicBool,
}

/// One stripe of the pool: a contiguous frame range plus its mapping and
/// clock state, all behind a private mutex.
struct Shard {
    /// Index of this shard's first frame in the global frame array.
    base: usize,
    /// Number of frames owned by this shard.
    len: usize,
    inner: Mutex<ShardInner>,
}

struct ShardInner {
    /// `(file, page) → global frame index` for resident pages.
    table: HashMap<Key, usize>,
    /// Reverse mapping: which key occupies each local frame (`None` = free).
    tags: Vec<Option<Key>>,
    /// Clock hand (local frame index).
    hand: usize,
}

/// Cumulative buffer pool statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Total page fetches (`hits + misses == fetches` at rest).
    pub fetches: u64,
    /// Fetches satisfied from the pool.
    pub hits: u64,
    /// Fetches requiring a disk read.
    pub misses: u64,
    /// Frames reclaimed by the clock.
    pub evictions: u64,
    /// Dirty frames written back (on eviction or flush).
    pub writebacks: u64,
}

// ------------------------------------------------------------- FileTable

const FILE_SEG_BITS: usize = 6;
const FILE_SEG_LEN: usize = 1 << FILE_SEG_BITS; // 64 files per segment
const FILE_SEGS: usize = 64; // 4096 files max

/// Append-only registry of disk managers with lock-free lookup.
///
/// The fetch hot path resolves `FileId → &DiskManager` on every miss and
/// every write-back; going through an `RwLock<Vec<Arc<_>>>` there costs a
/// lock round-trip plus an `Arc` clone per call. Files are never removed,
/// so a segmented array of `OnceLock` slots gives wait-free reads (one
/// atomic load per level) and returns a *borrowed* manager.
type FileSeg = Box<[OnceLock<Arc<DiskManager>>]>;

struct FileTable {
    segs: Box<[OnceLock<FileSeg>]>,
    /// Registration count; taken only by `register_file` and the cold
    /// iteration paths (`flush_and_sync`).
    len: Mutex<u32>,
}

impl FileTable {
    fn new() -> FileTable {
        FileTable {
            segs: (0..FILE_SEGS).map(|_| OnceLock::new()).collect(),
            len: Mutex::new(0),
        }
    }

    fn push(&self, dm: Arc<DiskManager>) -> FileId {
        let mut len = self.len.lock();
        let id = *len as usize;
        assert!(
            id < FILE_SEGS * FILE_SEG_LEN,
            "buffer pool file table full ({} files)",
            FILE_SEGS * FILE_SEG_LEN
        );
        let seg = self.segs[id >> FILE_SEG_BITS].get_or_init(|| {
            (0..FILE_SEG_LEN)
                .map(|_| OnceLock::new())
                .collect::<Vec<_>>()
                .into_boxed_slice()
        });
        seg[id & (FILE_SEG_LEN - 1)]
            .set(dm)
            .ok()
            .expect("file slot set twice");
        *len += 1;
        FileId(id as u32)
    }

    /// Wait-free lookup; panics on an unregistered id (caller bug, same
    /// contract as the former `Vec` index).
    fn get(&self, file: FileId) -> &DiskManager {
        let id = file.0 as usize;
        self.segs[id >> FILE_SEG_BITS]
            .get()
            .and_then(|seg| seg[id & (FILE_SEG_LEN - 1)].get())
            .expect("unregistered FileId")
    }

    fn for_each(&self, mut f: impl FnMut(&DiskManager) -> Result<()>) -> Result<()> {
        let n = *self.len.lock();
        for id in 0..n {
            f(self.get(FileId(id)))?;
        }
        Ok(())
    }
}

// ------------------------------------------------------------ BufferPool

/// The shared buffer pool.
pub struct BufferPool {
    frames: Box<[Frame]>,
    shards: Box<[Shard]>,
    files: FileTable,
    /// Whether eviction may write back ("steal") dirty frames. The engine
    /// disables stealing: dirty pages then reach disk only through
    /// journal-protected flushes, which is what makes logical redo-only
    /// recovery sound (the on-disk state is always a transaction-boundary
    /// snapshot).
    steal: bool,
    fetches: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    writebacks: AtomicU64,
}

/// Largest power of two `<= x` (1 for `x == 0`).
fn prev_power_of_two(x: usize) -> usize {
    if x <= 1 {
        1
    } else {
        1 << (usize::BITS - 1 - x.leading_zeros())
    }
}

fn auto_shards(capacity: usize) -> usize {
    prev_power_of_two(capacity / MIN_FRAMES_PER_SHARD).min(MAX_SHARDS)
}

impl BufferPool {
    /// Creates a pool with `capacity` frames (min 2) that may steal
    /// (write back dirty frames on eviction). The shard count is derived
    /// from the capacity (one stripe per [`MIN_FRAMES_PER_SHARD`] frames,
    /// capped at [`MAX_SHARDS`]).
    pub fn new(capacity: usize) -> Arc<BufferPool> {
        Self::with_shards(capacity, 0, true)
    }

    /// Creates a pool that never evicts dirty frames (no-steal). Fetches
    /// fail with [`Error::BufferExhausted`] when every frame of the target
    /// shard is dirty or pinned; the owner must flush at safe points.
    pub fn new_no_steal(capacity: usize) -> Arc<BufferPool> {
        Self::with_shards(capacity, 0, false)
    }

    /// Creates a pool with an explicit shard count (`0` = derive from the
    /// capacity). The count is rounded down to a power of two and clamped
    /// so every shard owns at least 2 frames; `shards == 1` reproduces the
    /// single-mutex pool (the E13 scaling baseline).
    pub fn with_shards(capacity: usize, shards: usize, steal: bool) -> Arc<BufferPool> {
        let capacity = capacity.max(2);
        let want = if shards == 0 {
            auto_shards(capacity)
        } else {
            shards
        };
        let n_shards = prev_power_of_two(want.clamp(1, capacity / 2));
        let frames: Vec<Frame> = (0..capacity)
            .map(|_| Frame {
                page: RwLock::new(Page::default()),
                pin: AtomicU32::new(0),
                dirty: AtomicBool::new(false),
                refbit: AtomicBool::new(false),
            })
            .collect();
        let base_len = capacity / n_shards;
        let remainder = capacity % n_shards;
        let mut shards_v = Vec::with_capacity(n_shards);
        let mut base = 0usize;
        for s in 0..n_shards {
            let len = base_len + usize::from(s < remainder);
            shards_v.push(Shard {
                base,
                len,
                inner: Mutex::new(ShardInner {
                    table: HashMap::new(),
                    tags: vec![None; len],
                    hand: 0,
                }),
            });
            base += len;
        }
        Arc::new(BufferPool {
            frames: frames.into_boxed_slice(),
            shards: shards_v.into_boxed_slice(),
            files: FileTable::new(),
            steal,
            fetches: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            writebacks: AtomicU64::new(0),
        })
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.frames.len()
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Registers a file; subsequent fetches address it by the returned id.
    pub fn register_file(&self, dm: Arc<DiskManager>) -> FileId {
        self.files.push(dm)
    }

    fn disk(&self, file: FileId) -> &DiskManager {
        self.files.get(file)
    }

    /// Page count of a registered file (delegates to its disk manager).
    pub fn file_page_count(&self, file: FileId) -> u32 {
        self.disk(file).page_count()
    }

    /// Physical (reads, writes) of a registered file since it was opened.
    pub fn file_io_counts(&self, file: FileId) -> (u64, u64) {
        self.disk(file).io_counts()
    }

    /// Number of `file`'s pages currently resident in the pool. Walks the
    /// shard tag arrays under their stripe locks — O(capacity), intended
    /// for statistics snapshots (planner residency estimates, `.stats`),
    /// not per-page hot paths.
    pub fn resident_pages(&self, file: FileId) -> u64 {
        let mut n = 0u64;
        for shard in self.shards.iter() {
            let inner = shard.inner.lock();
            n += inner
                .tags
                .iter()
                .filter(|t| matches!(t, Some((f, _)) if *f == file))
                .count() as u64;
        }
        n
    }

    /// Snapshot of the statistics counters (lock-free).
    pub fn stats(&self) -> BufferStats {
        BufferStats {
            fetches: self.fetches.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            writebacks: self.writebacks.load(Ordering::Relaxed),
        }
    }

    /// Resets the statistics counters and returns the pre-reset values
    /// (benchmark warm-up hygiene). Each counter is harvested with an
    /// atomic `swap`, so increments racing with the reset land either in
    /// the returned snapshot or in the fresh epoch — never in both and
    /// never lost. (The previous `store(0)` implementation could drop an
    /// increment that landed between a concurrent reader's load and the
    /// store.)
    pub fn reset_stats(&self) -> BufferStats {
        BufferStats {
            fetches: self.fetches.swap(0, Ordering::Relaxed),
            hits: self.hits.swap(0, Ordering::Relaxed),
            misses: self.misses.swap(0, Ordering::Relaxed),
            evictions: self.evictions.swap(0, Ordering::Relaxed),
            writebacks: self.writebacks.swap(0, Ordering::Relaxed),
        }
    }

    /// The stripe a key belongs to (Fibonacci-hashed so sequentially
    /// allocated pages of one file spread across shards).
    fn shard_of(&self, file: FileId, page: PageId) -> &Shard {
        let k = ((file.0 as u64) << 32) | page.0 as u64;
        let h = k.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(h >> 32) as usize & (self.shards.len() - 1)]
    }

    /// Locates or loads the page, returning its pinned frame index.
    fn pin_frame(&self, file: FileId, page: PageId, fill: Fill) -> Result<usize> {
        self.fetches.fetch_add(1, Ordering::Relaxed);
        let key = (file, page);
        let shard = self.shard_of(file, page);
        let mut inner = shard.inner.lock();
        if let Some(&idx) = inner.table.get(&key) {
            self.frames[idx].pin.fetch_add(1, Ordering::AcqRel);
            self.frames[idx].refbit.store(true, Ordering::Relaxed);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(idx);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let local = self.find_victim(shard, &mut inner)?;
        let idx = shard.base + local;
        let frame = &self.frames[idx];
        // Evict the previous occupant. The victim is unpinned and we hold
        // the shard lock, so no new pin can arrive; the frame latch is at
        // most transiently held by a guard mid-drop.
        if let Some(old) = inner.tags[local].take() {
            inner.table.remove(&old);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            if frame.dirty.swap(false, Ordering::AcqRel) {
                let mut guard = frame.page.write();
                self.disk(old.0).write_page(old.1, &mut guard)?;
                self.writebacks.fetch_add(1, Ordering::Relaxed);
            }
        }
        // Fill the frame *before* publishing the mapping: a key only ever
        // appears in the table with its content resident, so a concurrent
        // fetch can never pin a stale or half-loaded frame, and a failed
        // load simply leaves the frame free — nothing to uninstall.
        {
            let mut guard = frame.page.write();
            match fill {
                Fill::Load => self.disk(file).read_page_into(page, &mut guard)?,
                Fill::Fresh(kind) => guard.reset(kind),
            }
        }
        frame.pin.store(1, Ordering::Release);
        frame.refbit.store(true, Ordering::Relaxed);
        inner.tags[local] = Some(key);
        inner.table.insert(key, idx);
        Ok(idx)
    }

    /// Clock sweep for an unpinned frame of `shard`; returns a local index.
    fn find_victim(&self, shard: &Shard, inner: &mut ShardInner) -> Result<usize> {
        let n = shard.len;
        let evictable = |frame: &Frame| {
            frame.pin.load(Ordering::Acquire) == 0
                && (self.steal || !frame.dirty.load(Ordering::Acquire))
        };
        // Two full sweeps: the first clears reference bits, the second takes
        // any unpinned frame.
        for _ in 0..2 * n {
            let local = inner.hand;
            inner.hand = (inner.hand + 1) % n;
            let frame = &self.frames[shard.base + local];
            if !evictable(frame) {
                continue;
            }
            if frame.refbit.swap(false, Ordering::Relaxed) {
                continue;
            }
            return Ok(local);
        }
        // Final pass: ignore reference bits entirely.
        for local in 0..n {
            if evictable(&self.frames[shard.base + local]) {
                return Ok(local);
            }
        }
        Err(Error::BufferExhausted)
    }

    /// Fetches a page for reading.
    pub fn fetch_read(&self, file: FileId, page: PageId) -> Result<PageRef<'_>> {
        let idx = self.pin_frame(file, page, Fill::Load)?;
        Ok(PageRef {
            pool: self,
            idx,
            guard: self.frames[idx].page.read(),
        })
    }

    /// Fetches a page for writing; the frame is marked dirty.
    pub fn fetch_write(&self, file: FileId, page: PageId) -> Result<PageMut<'_>> {
        let idx = self.pin_frame(file, page, Fill::Load)?;
        self.frames[idx].dirty.store(true, Ordering::Release);
        Ok(PageMut {
            pool: self,
            idx,
            guard: self.frames[idx].page.write(),
        })
    }

    /// Allocates a new page in `file`, formatted with `kind`, and returns it
    /// pinned for writing.
    pub fn create(&self, file: FileId, kind: PageKind) -> Result<(PageId, PageMut<'_>)> {
        let page_id = self.disk(file).allocate_page()?;
        let idx = self.pin_frame(file, page_id, Fill::Fresh(kind))?;
        self.frames[idx].dirty.store(true, Ordering::Release);
        Ok((
            page_id,
            PageMut {
                pool: self,
                idx,
                guard: self.frames[idx].page.write(),
            },
        ))
    }

    /// Collects the dirty resident frames of every shard, pinned so their
    /// mappings cannot change, without holding any shard lock afterwards.
    /// Callers must unpin every returned frame.
    fn pin_dirty(&self) -> Vec<(usize, Key)> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let inner = shard.inner.lock();
            for (local, tag) in inner.tags.iter().enumerate() {
                if let Some(key) = tag {
                    let idx = shard.base + local;
                    if self.frames[idx].dirty.load(Ordering::Acquire) {
                        self.frames[idx].pin.fetch_add(1, Ordering::AcqRel);
                        out.push((idx, *key));
                    }
                }
            }
        }
        out
    }

    /// Writes every dirty frame back to its file (does **not** sync).
    ///
    /// Frames are pinned up front and written back with no shard lock
    /// held, so fetch traffic on other pages proceeds during the flush.
    /// A failed write-back re-marks the frame dirty (nothing is lost) and
    /// the first error is reported after every frame was unpinned.
    pub fn flush_all(&self) -> Result<()> {
        let pinned = self.pin_dirty();
        let mut result = Ok(());
        for (idx, (file, page)) in pinned {
            let frame = &self.frames[idx];
            if result.is_ok() && frame.dirty.swap(false, Ordering::AcqRel) {
                let mut guard = frame.page.write();
                match self.disk(file).write_page(page, &mut guard) {
                    Ok(()) => {
                        self.writebacks.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => {
                        frame.dirty.store(true, Ordering::Release);
                        result = Err(e);
                    }
                }
            }
            frame.pin.fetch_sub(1, Ordering::AcqRel);
        }
        result
    }

    /// Flushes all dirty frames and fsyncs every registered file — the
    /// checkpoint primitive.
    pub fn flush_and_sync(&self) -> Result<()> {
        self.flush_all()?;
        self.files.for_each(|dm| dm.sync())
    }

    /// Number of dirty frames (pressure signal for no-steal owners).
    pub fn dirty_count(&self) -> usize {
        self.frames
            .iter()
            .filter(|f| f.dirty.load(Ordering::Acquire))
            .count()
    }

    /// Snapshots every dirty frame as a sealed page image
    /// (`(file, page, bytes)`), for the checkpoint double-write journal.
    ///
    /// Checkpoint consistency: the engine calls this with writers excluded
    /// (commit lock / transaction boundary), so each image copied under the
    /// frame's read latch is the transaction-boundary state of that page.
    /// The bytes are copied **once**, straight out of the latched frame
    /// into the journal image, and sealed (checksummed) *after* the latch
    /// is released — sealing is pure CPU over the private copy, so the
    /// latch is held only for the 8 KiB memcpy.
    pub fn dirty_pages(&self) -> Vec<(FileId, PageId, Box<[u8; crate::page::PAGE_SIZE]>)> {
        let pinned = self.pin_dirty();
        let mut out = Vec::with_capacity(pinned.len());
        for (idx, (file, page)) in pinned {
            let frame = &self.frames[idx];
            if frame.dirty.load(Ordering::Acquire) {
                let guard = frame.page.read();
                let mut img = Box::new(*guard.bytes());
                drop(guard);
                Page::seal_image(&mut img);
                out.push((file, page, img));
            }
            frame.pin.fetch_sub(1, Ordering::AcqRel);
        }
        out
    }
}

/// How `pin_frame` fills a frame on a miss.
#[derive(Clone, Copy)]
enum Fill {
    /// Read the page from disk (the frame buffer is reused in place).
    Load,
    /// Format a zeroed page of the given kind (freshly allocated pages
    /// have no disk image worth reading).
    Fresh(PageKind),
}

/// Shared (read) guard over a pinned page.
pub struct PageRef<'a> {
    pool: &'a BufferPool,
    idx: usize,
    guard: RwLockReadGuard<'a, Page>,
}

impl Deref for PageRef<'_> {
    type Target = Page;
    fn deref(&self) -> &Page {
        &self.guard
    }
}

impl Drop for PageRef<'_> {
    fn drop(&mut self) {
        self.pool.frames[self.idx]
            .pin
            .fetch_sub(1, Ordering::AcqRel);
    }
}

/// Exclusive (write) guard over a pinned page.
pub struct PageMut<'a> {
    pool: &'a BufferPool,
    idx: usize,
    guard: RwLockWriteGuard<'a, Page>,
}

impl Deref for PageMut<'_> {
    type Target = Page;
    fn deref(&self) -> &Page {
        &self.guard
    }
}

impl DerefMut for PageMut<'_> {
    fn deref_mut(&mut self) -> &mut Page {
        &mut self.guard
    }
}

impl Drop for PageMut<'_> {
    fn drop(&mut self) {
        self.pool.frames[self.idx]
            .pin
            .fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpfile(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("tcom-buf-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn pool_with_file(name: &str, frames: usize) -> (Arc<BufferPool>, FileId, PathBuf) {
        let path = tmpfile(name);
        let dm = Arc::new(DiskManager::open(&path).unwrap());
        let pool = BufferPool::new(frames);
        let file = pool.register_file(dm);
        (pool, file, path)
    }

    #[test]
    fn create_write_read_through_pool() {
        let (pool, file, path) = pool_with_file("cwr", 8);
        let pid = {
            let (pid, mut page) = pool.create(file, PageKind::Slotted).unwrap();
            page.write_u64(100, 4242);
            pid
        };
        {
            let page = pool.fetch_read(file, pid).unwrap();
            assert_eq!(page.read_u64(100), 4242);
        }
        let s = pool.stats();
        assert_eq!(s.hits, 1); // the fetch_read hit the created frame
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let (pool, file, path) = pool_with_file("evict", 2);
        let mut ids = Vec::new();
        for i in 0..6u64 {
            let (pid, mut page) = pool.create(file, PageKind::Slotted).unwrap();
            page.write_u64(64, i * 11);
            ids.push(pid);
        }
        // Re-read everything; only 2 frames exist so most reads come from disk.
        for (i, pid) in ids.iter().enumerate() {
            let page = pool.fetch_read(file, *pid).unwrap();
            assert_eq!(page.read_u64(64), i as u64 * 11);
        }
        let s = pool.stats();
        assert!(s.evictions >= 4, "stats: {s:?}");
        assert!(s.writebacks >= 4, "stats: {s:?}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn pinned_pages_survive_pressure() {
        let (pool, file, path) = pool_with_file("pin", 2);
        let (pid_a, mut a) = pool.create(file, PageKind::Slotted).unwrap();
        a.write_u64(64, 1);
        // Hold the guard (pin) while forcing traffic through the other frame.
        for _ in 0..5 {
            let (_pid, mut p) = pool.create(file, PageKind::Slotted).unwrap();
            p.write_u64(64, 9);
        }
        a.write_u64(72, 2);
        drop(a);
        let back = pool.fetch_read(file, pid_a).unwrap();
        assert_eq!(back.read_u64(64), 1);
        assert_eq!(back.read_u64(72), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn exhaustion_when_everything_pinned() {
        let (pool, file, path) = pool_with_file("exhaust", 2);
        let (_p1, g1) = pool.create(file, PageKind::Slotted).unwrap();
        let (_p2, g2) = pool.create(file, PageKind::Slotted).unwrap();
        let r = pool.create(file, PageKind::Slotted);
        assert!(matches!(r, Err(Error::BufferExhausted)));
        drop((g1, g2));
        assert!(pool.create(file, PageKind::Slotted).is_ok());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn flush_and_sync_persists() {
        let path = tmpfile("flush");
        let pid;
        {
            let dm = Arc::new(DiskManager::open(&path).unwrap());
            let pool = BufferPool::new(4);
            let file = pool.register_file(dm);
            let (p, mut page) = pool.create(file, PageKind::Slotted).unwrap();
            page.write_u64(64, 31337);
            pid = p;
            drop(page);
            pool.flush_and_sync().unwrap();
        }
        let dm = DiskManager::open(&path).unwrap();
        assert_eq!(dm.read_page(pid).unwrap().read_u64(64), 31337);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn hit_ratio_reflects_locality() {
        let (pool, file, path) = pool_with_file("ratio", 4);
        let (pid, g) = pool.create(file, PageKind::Slotted).unwrap();
        drop(g);
        pool.reset_stats();
        for _ in 0..100 {
            let _ = pool.fetch_read(file, pid).unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.hits, 100);
        assert_eq!(s.misses, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn no_steal_never_evicts_dirty_frames() {
        let path = tmpfile("nosteal");
        let dm = Arc::new(DiskManager::open(&path).unwrap());
        let pool = BufferPool::new_no_steal(4);
        let file = pool.register_file(dm.clone());
        // Dirty 3 of 4 frames (unpinned).
        let mut pids = Vec::new();
        for i in 0..3u64 {
            let (pid, mut p) = pool.create(file, PageKind::Slotted).unwrap();
            p.write_u64(64, i);
            pids.push(pid);
        }
        // A 4th create uses the last clean frame…
        let (_p4, g4) = pool.create(file, PageKind::Slotted).unwrap();
        drop(g4);
        // …after which every frame is dirty: nothing is evictable, and
        // crucially nothing was written to disk behind our back.
        assert!(matches!(
            pool.create(file, PageKind::Slotted),
            Err(Error::BufferExhausted)
        ));
        assert_eq!(pool.stats().writebacks, 0, "no-steal must not write back");
        assert_eq!(dm.io_counts().1, 0, "no physical writes before flush");
        assert_eq!(pool.dirty_count(), 4);
        // A flush cleans the frames; traffic flows again.
        pool.flush_all().unwrap();
        assert_eq!(pool.dirty_count(), 0);
        let (_p5, g5) = pool.create(file, PageKind::Slotted).unwrap();
        drop(g5);
        // Dirty data survived the eviction pressure.
        for (i, pid) in pids.iter().enumerate() {
            let page = pool.fetch_read(file, *pid).unwrap();
            assert_eq!(page.read_u64(64), i as u64);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn dirty_pages_snapshot_is_sealed_and_complete() {
        let (pool, file, path) = pool_with_file("snapshot", 8);
        let (pid_a, mut a) = pool.create(file, PageKind::Slotted).unwrap();
        a.write_u64(64, 111);
        drop(a);
        let (pid_b, mut b) = pool.create(file, PageKind::Meta).unwrap();
        b.write_u64(64, 222);
        drop(b);
        let snap = pool.dirty_pages();
        assert_eq!(snap.len(), 2);
        for (f, pid, image) in &snap {
            assert_eq!(*f, file);
            // Images are sealed: checksums verify.
            let page = Page::from_bytes(image.clone());
            page.verify().expect("sealed image");
            let want = if *pid == pid_a { 111 } else { 222 };
            assert_eq!(page.read_u64(64), want);
            assert!(*pid == pid_a || *pid == pid_b);
        }
        // Snapshotting does not clean the frames.
        assert_eq!(pool.dirty_count(), 2);
        pool.flush_all().unwrap();
        assert!(pool.dirty_pages().is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn concurrent_readers_share_frames() {
        let (pool, file, path) = pool_with_file("conc", 8);
        let mut pids = Vec::new();
        for i in 0..8u64 {
            let (pid, mut p) = pool.create(file, PageKind::Slotted).unwrap();
            p.write_u64(64, i);
            pids.push(pid);
        }
        pool.flush_all().unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let pool = &pool;
                let pids = &pids;
                s.spawn(move || {
                    for _ in 0..200 {
                        for (i, pid) in pids.iter().enumerate() {
                            let page = pool.fetch_read(file, *pid).unwrap();
                            assert_eq!(page.read_u64(64), i as u64);
                        }
                    }
                });
            }
        });
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn shard_geometry() {
        // Small pools collapse to one shard (pre-striping semantics).
        assert_eq!(BufferPool::new(8).shard_count(), 1);
        assert_eq!(BufferPool::new(64).shard_count(), 1);
        // Larger pools stripe at MIN_FRAMES_PER_SHARD frames per shard.
        assert_eq!(BufferPool::new(128).shard_count(), 2);
        assert_eq!(BufferPool::new(1024).shard_count(), 16);
        assert_eq!(BufferPool::new(100_000).shard_count(), MAX_SHARDS);
        // Explicit counts round down to a power of two and respect the
        // 2-frames-per-shard floor; every frame stays reachable.
        let p = BufferPool::with_shards(10, 3, true);
        assert_eq!(p.shard_count(), 2);
        assert_eq!(p.capacity(), 10);
        assert_eq!(BufferPool::with_shards(4, 64, true).shard_count(), 2);
        assert_eq!(BufferPool::with_shards(2, 64, true).shard_count(), 1);
    }

    #[test]
    fn striped_pool_spreads_and_serves_working_set() {
        // A multi-shard pool must serve a working set larger than any one
        // shard as long as the clock can evict (steal pool), and reads
        // must always see the latest writes regardless of shard placement.
        let path = tmpfile("stripe");
        let dm = Arc::new(DiskManager::open(&path).unwrap());
        let pool = BufferPool::with_shards(16, 4, true);
        assert_eq!(pool.shard_count(), 4);
        let file = pool.register_file(dm);
        let mut pids = Vec::new();
        for i in 0..64u64 {
            let (pid, mut p) = pool.create(file, PageKind::Slotted).unwrap();
            p.write_u64(64, i * 3);
            pids.push(pid);
        }
        for _round in 0..3 {
            for (i, pid) in pids.iter().enumerate() {
                let mut p = pool.fetch_write(file, *pid).unwrap();
                assert_eq!(p.read_u64(64), i as u64 * 3);
                let v = p.read_u64(72);
                p.write_u64(72, v + 1);
            }
        }
        for pid in &pids {
            let p = pool.fetch_read(file, *pid).unwrap();
            assert_eq!(p.read_u64(72), 3);
        }
        let s = pool.stats();
        assert!(s.evictions > 0, "working set exceeds the pool: {s:?}");
        let _ = std::fs::remove_file(&path);
    }
}
