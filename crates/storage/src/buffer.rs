//! The buffer manager: a fixed pool of page frames shared by every file of
//! the database, with clock (second-chance) replacement.
//!
//! * Pages are addressed by `(FileId, PageId)`; files register their
//!   [`DiskManager`] with the pool.
//! * [`BufferPool::fetch_read`] / [`BufferPool::fetch_write`] return RAII
//!   guards that pin the frame; unpinning happens on drop. Pinned frames
//!   are never evicted.
//! * Write guards mark the frame dirty; dirty frames are written back on
//!   eviction ("steal") and by [`BufferPool::flush_all`]. Crash consistency
//!   is the WAL's job (logical, idempotent redo), so stealing is safe.
//! * The pool counts hits, misses, evictions and write-backs —
//!   the currency of experiment E9 (buffer-size sensitivity).

use crate::disk::DiskManager;
use crate::page::{Page, PageKind};
use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use tcom_kernel::{Error, PageId, Result};

/// Identifies a registered file within the pool.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FileId(pub u32);

type Key = (FileId, PageId);

struct Frame {
    page: RwLock<Page>,
    pin: AtomicU32,
    dirty: AtomicBool,
    refbit: AtomicBool,
}

struct Inner {
    table: HashMap<Key, usize>,
    /// Reverse mapping: which key occupies each frame (`None` = free).
    tags: Vec<Option<Key>>,
    hand: usize,
}

/// Cumulative buffer pool statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct BufferStats {
    /// Fetches satisfied from the pool.
    pub hits: u64,
    /// Fetches requiring a disk read.
    pub misses: u64,
    /// Frames reclaimed by the clock.
    pub evictions: u64,
    /// Dirty frames written back (on eviction or flush).
    pub writebacks: u64,
}

/// The shared buffer pool.
pub struct BufferPool {
    frames: Box<[Frame]>,
    inner: Mutex<Inner>,
    files: RwLock<Vec<Arc<DiskManager>>>,
    /// Whether eviction may write back ("steal") dirty frames. The engine
    /// disables stealing: dirty pages then reach disk only through
    /// journal-protected flushes, which is what makes logical redo-only
    /// recovery sound (the on-disk state is always a transaction-boundary
    /// snapshot).
    steal: bool,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    writebacks: AtomicU64,
}

impl BufferPool {
    /// Creates a pool with `capacity` frames (min 2) that may steal
    /// (write back dirty frames on eviction).
    pub fn new(capacity: usize) -> Arc<BufferPool> {
        Self::with_policy(capacity, true)
    }

    /// Creates a pool that never evicts dirty frames (no-steal). Fetches
    /// fail with [`Error::BufferExhausted`] when every frame is dirty or
    /// pinned; the owner must flush at safe points.
    pub fn new_no_steal(capacity: usize) -> Arc<BufferPool> {
        Self::with_policy(capacity, false)
    }

    fn with_policy(capacity: usize, steal: bool) -> Arc<BufferPool> {
        let capacity = capacity.max(2);
        let frames: Vec<Frame> = (0..capacity)
            .map(|_| Frame {
                page: RwLock::new(Page::default()),
                pin: AtomicU32::new(0),
                dirty: AtomicBool::new(false),
                refbit: AtomicBool::new(false),
            })
            .collect();
        Arc::new(BufferPool {
            frames: frames.into_boxed_slice(),
            inner: Mutex::new(Inner {
                table: HashMap::new(),
                tags: vec![None; capacity],
                hand: 0,
            }),
            files: RwLock::new(Vec::new()),
            steal,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            writebacks: AtomicU64::new(0),
        })
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.frames.len()
    }

    /// Registers a file; subsequent fetches address it by the returned id.
    pub fn register_file(&self, dm: Arc<DiskManager>) -> FileId {
        let mut files = self.files.write();
        files.push(dm);
        FileId(files.len() as u32 - 1)
    }

    fn disk(&self, file: FileId) -> Arc<DiskManager> {
        self.files.read()[file.0 as usize].clone()
    }

    /// Page count of a registered file (delegates to its disk manager).
    pub fn file_page_count(&self, file: FileId) -> u32 {
        self.disk(file).page_count()
    }

    /// Physical (reads, writes) of a registered file since it was opened.
    pub fn file_io_counts(&self, file: FileId) -> (u64, u64) {
        self.disk(file).io_counts()
    }

    /// Snapshot of the statistics counters.
    pub fn stats(&self) -> BufferStats {
        BufferStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            writebacks: self.writebacks.load(Ordering::Relaxed),
        }
    }

    /// Resets the statistics counters (benchmark warm-up hygiene).
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.writebacks.store(0, Ordering::Relaxed);
    }

    /// Locates or loads the page, returning its pinned frame index.
    fn pin_frame(&self, file: FileId, page: PageId, load: bool) -> Result<usize> {
        let mut inner = self.inner.lock();
        if let Some(&idx) = inner.table.get(&(file, page)) {
            self.frames[idx].pin.fetch_add(1, Ordering::AcqRel);
            self.frames[idx].refbit.store(true, Ordering::Relaxed);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(idx);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let idx = self.find_victim(&mut inner)?;
        // Evict the previous occupant.
        if let Some(old) = inner.tags[idx].take() {
            inner.table.remove(&old);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            if self.frames[idx].dirty.swap(false, Ordering::AcqRel) {
                let mut guard = self.frames[idx].page.write();
                self.disk(old.0).write_page(old.1, &mut guard)?;
                self.writebacks.fetch_add(1, Ordering::Relaxed);
            }
        }
        // Install the new occupant, pinned so nobody steals it while we load.
        self.frames[idx].pin.store(1, Ordering::Release);
        self.frames[idx].refbit.store(true, Ordering::Relaxed);
        inner.tags[idx] = Some((file, page));
        inner.table.insert((file, page), idx);
        drop(inner);
        {
            let mut guard = self.frames[idx].page.write();
            if load {
                match self.disk(file).read_page(page) {
                    Ok(p) => *guard = p,
                    Err(e) => {
                        // Failed load: uninstall the frame so a later fetch
                        // retries the disk instead of hitting a zeroed page.
                        drop(guard);
                        let mut inner = self.inner.lock();
                        inner.table.remove(&(file, page));
                        inner.tags[idx] = None;
                        self.frames[idx].pin.store(0, Ordering::Release);
                        return Err(e);
                    }
                }
            } else {
                *guard = Page::default();
            }
        }
        Ok(idx)
    }

    /// Clock sweep for an unpinned frame.
    fn find_victim(&self, inner: &mut Inner) -> Result<usize> {
        let n = self.frames.len();
        // Two full sweeps: the first clears reference bits, the second takes
        // any unpinned frame.
        for _ in 0..2 * n {
            let idx = inner.hand;
            inner.hand = (inner.hand + 1) % n;
            let frame = &self.frames[idx];
            if frame.pin.load(Ordering::Acquire) != 0 {
                continue;
            }
            if !self.steal && frame.dirty.load(Ordering::Acquire) {
                continue;
            }
            if frame.refbit.swap(false, Ordering::Relaxed) {
                continue;
            }
            return Ok(idx);
        }
        // Final pass: ignore reference bits entirely.
        for idx in 0..n {
            let frame = &self.frames[idx];
            if frame.pin.load(Ordering::Acquire) != 0 {
                continue;
            }
            if !self.steal && frame.dirty.load(Ordering::Acquire) {
                continue;
            }
            return Ok(idx);
        }
        Err(Error::BufferExhausted)
    }

    /// Fetches a page for reading.
    pub fn fetch_read(&self, file: FileId, page: PageId) -> Result<PageRef<'_>> {
        let idx = self.pin_frame(file, page, true)?;
        Ok(PageRef {
            pool: self,
            idx,
            guard: self.frames[idx].page.read(),
        })
    }

    /// Fetches a page for writing; the frame is marked dirty.
    pub fn fetch_write(&self, file: FileId, page: PageId) -> Result<PageMut<'_>> {
        let idx = self.pin_frame(file, page, true)?;
        self.frames[idx].dirty.store(true, Ordering::Release);
        Ok(PageMut {
            pool: self,
            idx,
            guard: self.frames[idx].page.write(),
        })
    }

    /// Allocates a new page in `file`, formatted with `kind`, and returns it
    /// pinned for writing.
    pub fn create(&self, file: FileId, kind: PageKind) -> Result<(PageId, PageMut<'_>)> {
        let page_id = self.disk(file).allocate_page()?;
        let idx = self.pin_frame(file, page_id, false)?;
        self.frames[idx].dirty.store(true, Ordering::Release);
        let mut guard = self.frames[idx].page.write();
        *guard = Page::new(kind);
        Ok((
            page_id,
            PageMut {
                pool: self,
                idx,
                guard,
            },
        ))
    }

    /// Writes every dirty frame back to its file (does **not** sync).
    pub fn flush_all(&self) -> Result<()> {
        let inner = self.inner.lock();
        for (idx, tag) in inner.tags.iter().enumerate() {
            if let Some((file, page)) = tag {
                if self.frames[idx].dirty.swap(false, Ordering::AcqRel) {
                    let mut guard = self.frames[idx].page.write();
                    self.disk(*file).write_page(*page, &mut guard)?;
                    self.writebacks.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        Ok(())
    }

    /// Flushes all dirty frames and fsyncs every registered file — the
    /// checkpoint primitive.
    pub fn flush_and_sync(&self) -> Result<()> {
        self.flush_all()?;
        for dm in self.files.read().iter() {
            dm.sync()?;
        }
        Ok(())
    }

    /// Number of dirty frames (pressure signal for no-steal owners).
    pub fn dirty_count(&self) -> usize {
        self.frames
            .iter()
            .filter(|f| f.dirty.load(Ordering::Acquire))
            .count()
    }

    /// Snapshots every dirty frame as a sealed page image
    /// (`(file, page, bytes)`), for the checkpoint double-write journal.
    pub fn dirty_pages(&self) -> Vec<(FileId, PageId, Box<[u8; crate::page::PAGE_SIZE]>)> {
        let inner = self.inner.lock();
        let mut out = Vec::new();
        for (idx, tag) in inner.tags.iter().enumerate() {
            if let Some((file, page)) = tag {
                if self.frames[idx].dirty.load(Ordering::Acquire) {
                    let guard = self.frames[idx].page.read();
                    let mut img = guard.clone();
                    img.seal();
                    out.push((*file, *page, Box::new(*img.bytes())));
                }
            }
        }
        out
    }
}

/// Shared (read) guard over a pinned page.
pub struct PageRef<'a> {
    pool: &'a BufferPool,
    idx: usize,
    guard: RwLockReadGuard<'a, Page>,
}

impl Deref for PageRef<'_> {
    type Target = Page;
    fn deref(&self) -> &Page {
        &self.guard
    }
}

impl Drop for PageRef<'_> {
    fn drop(&mut self) {
        self.pool.frames[self.idx]
            .pin
            .fetch_sub(1, Ordering::AcqRel);
    }
}

/// Exclusive (write) guard over a pinned page.
pub struct PageMut<'a> {
    pool: &'a BufferPool,
    idx: usize,
    guard: RwLockWriteGuard<'a, Page>,
}

impl Deref for PageMut<'_> {
    type Target = Page;
    fn deref(&self) -> &Page {
        &self.guard
    }
}

impl DerefMut for PageMut<'_> {
    fn deref_mut(&mut self) -> &mut Page {
        &mut self.guard
    }
}

impl Drop for PageMut<'_> {
    fn drop(&mut self) {
        self.pool.frames[self.idx]
            .pin
            .fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpfile(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("tcom-buf-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn pool_with_file(name: &str, frames: usize) -> (Arc<BufferPool>, FileId, PathBuf) {
        let path = tmpfile(name);
        let dm = Arc::new(DiskManager::open(&path).unwrap());
        let pool = BufferPool::new(frames);
        let file = pool.register_file(dm);
        (pool, file, path)
    }

    #[test]
    fn create_write_read_through_pool() {
        let (pool, file, path) = pool_with_file("cwr", 8);
        let pid = {
            let (pid, mut page) = pool.create(file, PageKind::Slotted).unwrap();
            page.write_u64(100, 4242);
            pid
        };
        {
            let page = pool.fetch_read(file, pid).unwrap();
            assert_eq!(page.read_u64(100), 4242);
        }
        let s = pool.stats();
        assert_eq!(s.hits, 1); // the fetch_read hit the created frame
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let (pool, file, path) = pool_with_file("evict", 2);
        let mut ids = Vec::new();
        for i in 0..6u64 {
            let (pid, mut page) = pool.create(file, PageKind::Slotted).unwrap();
            page.write_u64(64, i * 11);
            ids.push(pid);
        }
        // Re-read everything; only 2 frames exist so most reads come from disk.
        for (i, pid) in ids.iter().enumerate() {
            let page = pool.fetch_read(file, *pid).unwrap();
            assert_eq!(page.read_u64(64), i as u64 * 11);
        }
        let s = pool.stats();
        assert!(s.evictions >= 4, "stats: {s:?}");
        assert!(s.writebacks >= 4, "stats: {s:?}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn pinned_pages_survive_pressure() {
        let (pool, file, path) = pool_with_file("pin", 2);
        let (pid_a, mut a) = pool.create(file, PageKind::Slotted).unwrap();
        a.write_u64(64, 1);
        // Hold the guard (pin) while forcing traffic through the other frame.
        for _ in 0..5 {
            let (_pid, mut p) = pool.create(file, PageKind::Slotted).unwrap();
            p.write_u64(64, 9);
        }
        a.write_u64(72, 2);
        drop(a);
        let back = pool.fetch_read(file, pid_a).unwrap();
        assert_eq!(back.read_u64(64), 1);
        assert_eq!(back.read_u64(72), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn exhaustion_when_everything_pinned() {
        let (pool, file, path) = pool_with_file("exhaust", 2);
        let (_p1, g1) = pool.create(file, PageKind::Slotted).unwrap();
        let (_p2, g2) = pool.create(file, PageKind::Slotted).unwrap();
        let r = pool.create(file, PageKind::Slotted);
        assert!(matches!(r, Err(Error::BufferExhausted)));
        drop((g1, g2));
        assert!(pool.create(file, PageKind::Slotted).is_ok());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn flush_and_sync_persists() {
        let path = tmpfile("flush");
        let pid;
        {
            let dm = Arc::new(DiskManager::open(&path).unwrap());
            let pool = BufferPool::new(4);
            let file = pool.register_file(dm);
            let (p, mut page) = pool.create(file, PageKind::Slotted).unwrap();
            page.write_u64(64, 31337);
            pid = p;
            drop(page);
            pool.flush_and_sync().unwrap();
        }
        let dm = DiskManager::open(&path).unwrap();
        assert_eq!(dm.read_page(pid).unwrap().read_u64(64), 31337);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn hit_ratio_reflects_locality() {
        let (pool, file, path) = pool_with_file("ratio", 4);
        let (pid, g) = pool.create(file, PageKind::Slotted).unwrap();
        drop(g);
        pool.reset_stats();
        for _ in 0..100 {
            let _ = pool.fetch_read(file, pid).unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.hits, 100);
        assert_eq!(s.misses, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn no_steal_never_evicts_dirty_frames() {
        let path = tmpfile("nosteal");
        let dm = Arc::new(DiskManager::open(&path).unwrap());
        let pool = BufferPool::new_no_steal(4);
        let file = pool.register_file(dm.clone());
        // Dirty 3 of 4 frames (unpinned).
        let mut pids = Vec::new();
        for i in 0..3u64 {
            let (pid, mut p) = pool.create(file, PageKind::Slotted).unwrap();
            p.write_u64(64, i);
            pids.push(pid);
        }
        // A 4th create uses the last clean frame…
        let (_p4, g4) = pool.create(file, PageKind::Slotted).unwrap();
        drop(g4);
        // …after which every frame is dirty: nothing is evictable, and
        // crucially nothing was written to disk behind our back.
        assert!(matches!(
            pool.create(file, PageKind::Slotted),
            Err(Error::BufferExhausted)
        ));
        assert_eq!(pool.stats().writebacks, 0, "no-steal must not write back");
        assert_eq!(dm.io_counts().1, 0, "no physical writes before flush");
        assert_eq!(pool.dirty_count(), 4);
        // A flush cleans the frames; traffic flows again.
        pool.flush_all().unwrap();
        assert_eq!(pool.dirty_count(), 0);
        let (_p5, g5) = pool.create(file, PageKind::Slotted).unwrap();
        drop(g5);
        // Dirty data survived the eviction pressure.
        for (i, pid) in pids.iter().enumerate() {
            let page = pool.fetch_read(file, *pid).unwrap();
            assert_eq!(page.read_u64(64), i as u64);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn dirty_pages_snapshot_is_sealed_and_complete() {
        let (pool, file, path) = pool_with_file("snapshot", 8);
        let (pid_a, mut a) = pool.create(file, PageKind::Slotted).unwrap();
        a.write_u64(64, 111);
        drop(a);
        let (pid_b, mut b) = pool.create(file, PageKind::Meta).unwrap();
        b.write_u64(64, 222);
        drop(b);
        let snap = pool.dirty_pages();
        assert_eq!(snap.len(), 2);
        for (f, pid, image) in &snap {
            assert_eq!(*f, file);
            // Images are sealed: checksums verify.
            let page = Page::from_bytes(image.clone());
            page.verify().expect("sealed image");
            let want = if *pid == pid_a { 111 } else { 222 };
            assert_eq!(page.read_u64(64), want);
            assert!(*pid == pid_a || *pid == pid_b);
        }
        // Snapshotting does not clean the frames.
        assert_eq!(pool.dirty_count(), 2);
        pool.flush_all().unwrap();
        assert!(pool.dirty_pages().is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn concurrent_readers_share_frames() {
        let (pool, file, path) = pool_with_file("conc", 8);
        let mut pids = Vec::new();
        for i in 0..8u64 {
            let (pid, mut p) = pool.create(file, PageKind::Slotted).unwrap();
            p.write_u64(64, i);
            pids.push(pid);
        }
        pool.flush_all().unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let pool = &pool;
                let pids = &pids;
                s.spawn(move || {
                    for _ in 0..200 {
                        for (i, pid) in pids.iter().enumerate() {
                            let page = pool.fetch_read(file, *pid).unwrap();
                            assert_eq!(page.read_u64(64), i as u64);
                        }
                    }
                });
            }
        });
        let _ = std::fs::remove_file(&path);
    }
}
