//! Fixed-size page frames.
//!
//! All on-disk structures are built from [`PAGE_SIZE`]-byte pages. A page is
//! a plain byte array; typed layouts (slotted data pages, B⁺-tree nodes)
//! interpret the bytes. The first [`PAGE_HEADER_LEN`] bytes of every page
//! hold a common header:
//!
//! ```text
//! offset 0  u32  checksum (crc32c of bytes[4..PAGE_SIZE])
//! offset 4  u8   page kind tag
//! offset 5  u8   format version
//! offset 6  u16  reserved
//! ```
//!
//! The checksum is computed on write-out and verified on read-in by the
//! disk manager, so torn or corrupted pages surface as
//! [`tcom_kernel::Error::Corruption`] instead of silent garbage.

use tcom_kernel::codec::crc32c;
use tcom_kernel::{Error, Result};

/// Size of every page in bytes (8 KiB, the classic DBMS default).
pub const PAGE_SIZE: usize = 8192;

/// Bytes reserved for the common page header.
pub const PAGE_HEADER_LEN: usize = 8;

/// Discriminates page layouts; stored in the common header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum PageKind {
    /// Unused / freshly allocated.
    Free = 0,
    /// Slotted data page holding variable-length records.
    Slotted = 1,
    /// B⁺-tree leaf node.
    BTreeLeaf = 2,
    /// B⁺-tree internal node.
    BTreeInternal = 3,
    /// File meta page (page 0 of index and heap files).
    Meta = 4,
    /// Immutable compressed-segment payload page (tiered storage).
    Segment = 5,
}

impl PageKind {
    /// Parses the tag byte.
    pub fn from_u8(v: u8) -> Result<PageKind> {
        Ok(match v {
            0 => PageKind::Free,
            1 => PageKind::Slotted,
            2 => PageKind::BTreeLeaf,
            3 => PageKind::BTreeInternal,
            4 => PageKind::Meta,
            5 => PageKind::Segment,
            t => return Err(Error::corruption(format!("unknown page kind {t}"))),
        })
    }
}

/// An in-memory page image.
///
/// Heap-allocated to keep buffer-frame moves cheap and the stack small.
pub struct Page {
    bytes: Box<[u8; PAGE_SIZE]>,
}

impl Page {
    /// A zeroed page of the given kind.
    pub fn new(kind: PageKind) -> Page {
        let mut p = Page {
            bytes: vec![0u8; PAGE_SIZE]
                .into_boxed_slice()
                .try_into()
                .expect("exact size"),
        };
        p.set_kind(kind);
        p.bytes[5] = 1; // format version
        p
    }

    /// Wraps raw bytes read from disk (checksum verified by the caller).
    pub fn from_bytes(bytes: Box<[u8; PAGE_SIZE]>) -> Page {
        Page { bytes }
    }

    /// Full page bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.bytes
    }

    /// Full page bytes, mutable.
    #[inline]
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.bytes
    }

    /// The payload area after the common header.
    #[inline]
    pub fn body(&self) -> &[u8] {
        &self.bytes[PAGE_HEADER_LEN..]
    }

    /// The payload area after the common header, mutable.
    #[inline]
    pub fn body_mut(&mut self) -> &mut [u8] {
        &mut self.bytes[PAGE_HEADER_LEN..]
    }

    /// This page's kind tag.
    pub fn kind(&self) -> Result<PageKind> {
        PageKind::from_u8(self.bytes[4])
    }

    /// Sets the kind tag.
    pub fn set_kind(&mut self, kind: PageKind) {
        self.bytes[4] = kind as u8;
    }

    /// Recomputes and stores the checksum; called by the disk manager
    /// immediately before write-out.
    pub fn seal(&mut self) {
        Page::seal_image(&mut self.bytes);
    }

    /// Seals a raw page image in place — the checksum is pure CPU over the
    /// buffer, so callers holding only a *copy* of a latched page (the
    /// checkpoint journal snapshot) can seal it after releasing the latch.
    pub fn seal_image(bytes: &mut [u8; PAGE_SIZE]) {
        let sum = crc32c(&bytes[4..]);
        bytes[0..4].copy_from_slice(&sum.to_le_bytes());
    }

    /// Re-initializes the page in place to a zeroed page of `kind` —
    /// equivalent to `*self = Page::new(kind)` without the heap round-trip
    /// (buffer frames reuse their allocation across occupants).
    pub fn reset(&mut self, kind: PageKind) {
        self.bytes.fill(0);
        self.set_kind(kind);
        self.bytes[5] = 1; // format version
    }

    /// Verifies the stored checksum; called by the disk manager after
    /// read-in.
    pub fn verify(&self) -> Result<()> {
        let stored = u32::from_le_bytes(self.bytes[0..4].try_into().expect("4 bytes"));
        let actual = crc32c(&self.bytes[4..]);
        if stored != actual {
            return Err(Error::corruption(format!(
                "page checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"
            )));
        }
        Ok(())
    }

    // --- little-endian scalar accessors used by the typed layouts ---

    /// Reads a `u16` at absolute offset `off`.
    #[inline]
    pub fn read_u16(&self, off: usize) -> u16 {
        u16::from_le_bytes(self.bytes[off..off + 2].try_into().expect("2 bytes"))
    }

    /// Writes a `u16` at absolute offset `off`.
    #[inline]
    pub fn write_u16(&mut self, off: usize, v: u16) {
        self.bytes[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads a `u32` at absolute offset `off`.
    #[inline]
    pub fn read_u32(&self, off: usize) -> u32 {
        u32::from_le_bytes(self.bytes[off..off + 4].try_into().expect("4 bytes"))
    }

    /// Writes a `u32` at absolute offset `off`.
    #[inline]
    pub fn write_u32(&mut self, off: usize, v: u32) {
        self.bytes[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads a `u64` at absolute offset `off`.
    #[inline]
    pub fn read_u64(&self, off: usize) -> u64 {
        u64::from_le_bytes(self.bytes[off..off + 8].try_into().expect("8 bytes"))
    }

    /// Writes a `u64` at absolute offset `off`.
    #[inline]
    pub fn write_u64(&mut self, off: usize, v: u64) {
        self.bytes[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }
}

impl Clone for Page {
    fn clone(&self) -> Page {
        Page {
            bytes: self.bytes.clone(),
        }
    }
}

impl Default for Page {
    fn default() -> Page {
        Page::new(PageKind::Free)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_page_has_kind_and_version() {
        let p = Page::new(PageKind::Slotted);
        assert_eq!(p.kind().unwrap(), PageKind::Slotted);
        assert_eq!(p.bytes()[5], 1);
    }

    #[test]
    fn seal_verify_roundtrip() {
        let mut p = Page::new(PageKind::Meta);
        p.write_u64(100, 0xDEADBEEF);
        p.seal();
        p.verify().unwrap();
        // Flip a body bit -> verify fails.
        p.bytes_mut()[200] ^= 1;
        assert!(p.verify().is_err());
    }

    #[test]
    fn scalar_accessors() {
        let mut p = Page::new(PageKind::Free);
        p.write_u16(10, 0xBEEF);
        p.write_u32(12, 0xCAFEBABE);
        p.write_u64(16, u64::MAX - 3);
        assert_eq!(p.read_u16(10), 0xBEEF);
        assert_eq!(p.read_u32(12), 0xCAFEBABE);
        assert_eq!(p.read_u64(16), u64::MAX - 3);
    }

    #[test]
    fn unknown_kind_rejected() {
        let mut p = Page::new(PageKind::Free);
        p.bytes_mut()[4] = 99;
        assert!(p.kind().is_err());
    }
}
