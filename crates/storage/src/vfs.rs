//! The virtual file system boundary.
//!
//! Every byte the engine persists — store pages, the WAL, the checkpoint
//! journal — flows through a [`Vfs`], chosen once when the database opens.
//! Two implementations exist:
//!
//! * [`StdVfs`] — a passthrough to the real file system using positioned
//!   reads/writes (`pread`/`pwrite`), used by default. It adds no locking
//!   and no buffering, so the default path costs exactly what direct file
//!   I/O costs.
//! * [`FaultVfs`] — a fully in-memory file system for crash testing. It
//!   numbers every I/O operation and, on a scripted [`FaultSchedule`], can
//!   fail a write, tear a write at a byte offset, flip bits on a read, or
//!   take a *power cut*: every byte written since the last `sync` of each
//!   file vanishes, and all subsequent I/O fails with
//!   [`Error::FaultInjected`] until [`FaultVfs::reset_after_crash`].
//!
//! The fault model is deliberately adversarial-but-fair: a file's durable
//! content is exactly its content at its last sync (plus, for a torn
//! write, the surviving prefix of the interrupted write). Real disks can
//! keep more than that — a recovery algorithm correct under this model is
//! correct under any weaker failure behaviour.

use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::fs::OpenOptions;
use std::io;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use tcom_kernel::{Error, Result};

/// An open file: positioned I/O only, no seek state, shareable across
/// threads.
#[allow(clippy::len_without_is_empty)] // fallible len(); emptiness is not a useful file query here
pub trait VfsFile: Send + Sync {
    /// Reads exactly `buf.len()` bytes starting at `offset`.
    fn read_at(&self, buf: &mut [u8], offset: u64) -> Result<()>;
    /// Writes all of `buf` starting at `offset`, extending the file as
    /// needed.
    fn write_at(&self, buf: &[u8], offset: u64) -> Result<()>;
    /// Forces written data to stable storage.
    fn sync(&self) -> Result<()>;
    /// Truncates or zero-extends the file to `len` bytes.
    fn set_len(&self, len: u64) -> Result<()>;
    /// Current file length in bytes.
    fn len(&self) -> Result<u64>;
}

/// A file system namespace: opens, probes and removes files by path.
pub trait Vfs: Send + Sync {
    /// Opens `path` read-write, creating it (empty) if missing.
    fn open(&self, path: &Path) -> Result<Arc<dyn VfsFile>>;
    /// True iff `path` exists.
    fn exists(&self, path: &Path) -> bool;
    /// Removes `path`; removing a missing file is an error.
    fn remove(&self, path: &Path) -> Result<()>;
    /// Atomically renames `from` to `to`, replacing `to` if it exists.
    /// Renaming a missing file is an error.
    fn rename(&self, from: &Path, to: &Path) -> Result<()>;
}

// ---------------------------------------------------------------- StdVfs

/// The production [`Vfs`]: a zero-overhead passthrough to `std::fs`.
#[derive(Clone, Copy, Debug, Default)]
pub struct StdVfs;

impl StdVfs {
    /// A ready-to-share handle (`Db::open` wants an `Arc<dyn Vfs>`).
    pub fn arc() -> Arc<dyn Vfs> {
        Arc::new(StdVfs)
    }
}

struct StdFile(std::fs::File);

impl VfsFile for StdFile {
    fn read_at(&self, buf: &mut [u8], offset: u64) -> Result<()> {
        self.0.read_exact_at(buf, offset)?;
        Ok(())
    }

    fn write_at(&self, buf: &[u8], offset: u64) -> Result<()> {
        self.0.write_all_at(buf, offset)?;
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        self.0.sync_data()?;
        Ok(())
    }

    fn set_len(&self, len: u64) -> Result<()> {
        self.0.set_len(len)?;
        Ok(())
    }

    fn len(&self) -> Result<u64> {
        Ok(self.0.metadata()?.len())
    }
}

impl Vfs for StdVfs {
    fn open(&self, path: &Path) -> Result<Arc<dyn VfsFile>> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(Arc::new(StdFile(file)))
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn remove(&self, path: &Path) -> Result<()> {
        std::fs::remove_file(path)?;
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<()> {
        std::fs::rename(from, to)?;
        Ok(())
    }
}

// -------------------------------------------------------------- FaultVfs

/// One scripted fault, addressed by operation index (see [`FaultVfs`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fault {
    /// The write fails with [`Error::FaultInjected`]; nothing is applied;
    /// later operations proceed normally (a transient device error).
    FailWrite,
    /// The write's first `keep` bytes reach the medium, then the power
    /// fails: all other unsynced bytes of every file are lost and the VFS
    /// enters the crashed state.
    TornWrite {
        /// Bytes of the interrupted write that survive.
        keep: usize,
    },
    /// The power fails *before* the operation applies: every file reverts
    /// to its last-synced content and the VFS enters the crashed state.
    PowerCut,
    /// The read completes but `mask` is XOR-ed into the returned buffer at
    /// `byte` (modulo the buffer length) — silent media corruption.
    BitFlipRead {
        /// Byte offset within the read buffer.
        byte: usize,
        /// Bits to flip there.
        mask: u8,
    },
}

/// Faults keyed by the operation index they strike at. Mutating operations
/// (`write_at`, `sync`, `set_len`, `remove`) and reads are numbered on two
/// separate counters, since crash points enumerate mutations while
/// bit-flips target reads.
#[derive(Clone, Debug, Default)]
pub struct FaultSchedule {
    /// Faults on the mutation counter ([`Fault::FailWrite`],
    /// [`Fault::TornWrite`], [`Fault::PowerCut`]).
    pub on_mutation: BTreeMap<u64, Fault>,
    /// Faults on the read counter ([`Fault::BitFlipRead`]).
    pub on_read: BTreeMap<u64, Fault>,
}

#[derive(Default)]
struct FileState {
    current: Vec<u8>,
    durable: Vec<u8>,
}

#[derive(Default)]
struct FaultState {
    files: HashMap<PathBuf, FileState>,
    schedule: FaultSchedule,
    mut_ops: u64,
    read_ops: u64,
    crashed: bool,
}

impl FaultState {
    fn power_cut(&mut self) {
        for f in self.files.values_mut() {
            f.current = f.durable.clone();
        }
        self.crashed = true;
    }

    fn check_live(&self) -> Result<()> {
        if self.crashed {
            Err(Error::fault("I/O after power cut"))
        } else {
            Ok(())
        }
    }
}

/// Deterministic fault-injecting in-memory [`Vfs`].
///
/// All files live in one shared state behind the handle, so clones observe
/// and control the same "disk"; a test typically keeps one clone to arm
/// the [`FaultSchedule`] and hands another to the database. Operation
/// numbering is global across files — with a deterministic workload, the
/// same schedule always strikes the same operation on the same file.
#[derive(Clone, Default)]
pub struct FaultVfs {
    state: Arc<Mutex<FaultState>>,
}

impl FaultVfs {
    /// An empty in-memory file system with no faults armed.
    pub fn new() -> FaultVfs {
        FaultVfs::default()
    }

    /// Replaces the armed schedule. Indices are absolute operation counts
    /// since construction (see [`FaultVfs::mut_ops`]).
    pub fn set_schedule(&self, schedule: FaultSchedule) {
        self.state.lock().schedule = schedule;
    }

    /// Arms a single power cut at absolute mutation index `op`.
    pub fn power_cut_at(&self, op: u64) {
        let mut st = self.state.lock();
        st.schedule.on_mutation.insert(op, Fault::PowerCut);
    }

    /// Mutating operations performed so far (the crash-point axis).
    pub fn mut_ops(&self) -> u64 {
        self.state.lock().mut_ops
    }

    /// Read operations performed so far.
    pub fn read_ops(&self) -> u64 {
        self.state.lock().read_ops
    }

    /// True once a [`Fault::PowerCut`] or [`Fault::TornWrite`] has struck.
    pub fn crashed(&self) -> bool {
        self.state.lock().crashed
    }

    /// "Reboots the machine": clears the crashed flag and the schedule so
    /// the next open sees exactly the durable (last-synced) bytes. Keeps
    /// the operation counters running.
    pub fn reset_after_crash(&self) {
        let mut st = self.state.lock();
        for f in st.files.values_mut() {
            f.current = f.durable.clone();
        }
        st.crashed = false;
        st.schedule = FaultSchedule::default();
    }

    /// Order-independent hash of every file's durable content — two runs
    /// of the same workload under the same schedule must agree on this.
    pub fn durable_fingerprint(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let st = self.state.lock();
        let mut names: Vec<&PathBuf> = st.files.keys().collect();
        names.sort();
        let mut h = DefaultHasher::new();
        for name in names {
            name.hash(&mut h);
            st.files[name].durable.hash(&mut h);
        }
        h.finish()
    }

    /// The durable length of `path` (what a reopen would see), if present.
    pub fn durable_len(&self, path: &Path) -> Option<u64> {
        self.state
            .lock()
            .files
            .get(path)
            .map(|f| f.durable.len() as u64)
    }
}

struct FaultFile {
    state: Arc<Mutex<FaultState>>,
    path: PathBuf,
}

impl VfsFile for FaultFile {
    fn read_at(&self, buf: &mut [u8], offset: u64) -> Result<()> {
        let mut st = self.state.lock();
        st.check_live()?;
        let idx = st.read_ops;
        st.read_ops += 1;
        let fault = st.schedule.on_read.remove(&idx);
        let file = st
            .files
            .get(&self.path)
            .ok_or_else(|| Error::fault(format!("read of removed file {}", self.path.display())))?;
        let start = offset as usize;
        let end = start + buf.len();
        if end > file.current.len() {
            return Err(Error::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!(
                    "read past EOF of {} ({} + {} > {})",
                    self.path.display(),
                    start,
                    buf.len(),
                    file.current.len()
                ),
            )));
        }
        buf.copy_from_slice(&file.current[start..end]);
        if let Some(Fault::BitFlipRead { byte, mask }) = fault {
            if !buf.is_empty() {
                let at = byte % buf.len();
                buf[at] ^= mask;
            }
        }
        Ok(())
    }

    fn write_at(&self, buf: &[u8], offset: u64) -> Result<()> {
        let mut st = self.state.lock();
        st.check_live()?;
        let idx = st.mut_ops;
        st.mut_ops += 1;
        match st.schedule.on_mutation.remove(&idx) {
            Some(Fault::FailWrite) => {
                return Err(Error::fault(format!("write op {idx} failed on schedule")))
            }
            Some(Fault::PowerCut) => {
                st.power_cut();
                return Err(Error::fault(format!("power cut before write op {idx}")));
            }
            Some(Fault::TornWrite { keep }) => {
                let keep = keep.min(buf.len());
                // The surviving prefix hits the platter; everything else
                // unsynced (in every file) is gone.
                let file = st.files.entry(self.path.clone()).or_default();
                let end = offset as usize + keep;
                if file.durable.len() < end {
                    file.durable.resize(end, 0);
                }
                file.durable[offset as usize..end].copy_from_slice(&buf[..keep]);
                st.power_cut();
                return Err(Error::fault(format!(
                    "power cut tore write op {idx} after {keep} bytes"
                )));
            }
            _ => {}
        }
        let file = st.files.entry(self.path.clone()).or_default();
        let end = offset as usize + buf.len();
        if file.current.len() < end {
            file.current.resize(end, 0);
        }
        file.current[offset as usize..end].copy_from_slice(buf);
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        let mut st = self.state.lock();
        st.check_live()?;
        let idx = st.mut_ops;
        st.mut_ops += 1;
        match st.schedule.on_mutation.remove(&idx) {
            Some(Fault::PowerCut) | Some(Fault::TornWrite { .. }) => {
                st.power_cut();
                return Err(Error::fault(format!("power cut before sync op {idx}")));
            }
            Some(Fault::FailWrite) => {
                return Err(Error::fault(format!("sync op {idx} failed on schedule")))
            }
            _ => {}
        }
        if let Some(file) = st.files.get_mut(&self.path) {
            file.durable = file.current.clone();
        }
        Ok(())
    }

    fn set_len(&self, len: u64) -> Result<()> {
        let mut st = self.state.lock();
        st.check_live()?;
        let idx = st.mut_ops;
        st.mut_ops += 1;
        match st.schedule.on_mutation.remove(&idx) {
            Some(Fault::PowerCut) | Some(Fault::TornWrite { .. }) => {
                st.power_cut();
                return Err(Error::fault(format!("power cut before set_len op {idx}")));
            }
            Some(Fault::FailWrite) => {
                return Err(Error::fault(format!("set_len op {idx} failed on schedule")))
            }
            _ => {}
        }
        let file = st.files.entry(self.path.clone()).or_default();
        file.current.resize(len as usize, 0);
        Ok(())
    }

    fn len(&self) -> Result<u64> {
        let st = self.state.lock();
        st.check_live()?;
        Ok(st
            .files
            .get(&self.path)
            .map_or(0, |f| f.current.len() as u64))
    }
}

impl Vfs for FaultVfs {
    fn open(&self, path: &Path) -> Result<Arc<dyn VfsFile>> {
        let mut st = self.state.lock();
        st.check_live()?;
        st.files.entry(path.to_owned()).or_default();
        Ok(Arc::new(FaultFile {
            state: self.state.clone(),
            path: path.to_owned(),
        }))
    }

    fn exists(&self, path: &Path) -> bool {
        self.state.lock().files.contains_key(path)
    }

    fn remove(&self, path: &Path) -> Result<()> {
        let mut st = self.state.lock();
        st.check_live()?;
        let idx = st.mut_ops;
        st.mut_ops += 1;
        match st.schedule.on_mutation.remove(&idx) {
            Some(Fault::PowerCut) | Some(Fault::TornWrite { .. }) => {
                st.power_cut();
                return Err(Error::fault(format!("power cut before remove op {idx}")));
            }
            _ => {}
        }
        // Removal is treated as immediately durable: directory-entry
        // durability games are out of scope for this fault model.
        st.files
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| Error::Io(io::Error::new(io::ErrorKind::NotFound, "no such file")))
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<()> {
        let mut st = self.state.lock();
        st.check_live()?;
        let idx = st.mut_ops;
        st.mut_ops += 1;
        match st.schedule.on_mutation.remove(&idx) {
            Some(Fault::PowerCut) | Some(Fault::TornWrite { .. }) => {
                st.power_cut();
                return Err(Error::fault(format!("power cut before rename op {idx}")));
            }
            Some(Fault::FailWrite) => {
                return Err(Error::fault(format!("rename op {idx} failed on schedule")))
            }
            _ => {}
        }
        // Like removal, the directory-entry swap is immediately durable,
        // and the renamed file carries its *durable* content forward: a
        // rename is only crash-atomic for data that was synced first,
        // which is exactly the temp-write/sync/rename publication contract.
        let file = st
            .files
            .remove(from)
            .ok_or_else(|| Error::Io(io::Error::new(io::ErrorKind::NotFound, "no such file")))?;
        st.files.insert(to.to_owned(), file);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(name: &str) -> PathBuf {
        PathBuf::from(format!("/mem/{name}"))
    }

    #[test]
    fn std_vfs_positioned_io() {
        let dir = std::env::temp_dir().join(format!("tcom-vfs-{}", std::process::id()));
        let _ = std::fs::remove_file(&dir);
        let vfs = StdVfs;
        assert!(!vfs.exists(&dir));
        let f = vfs.open(&dir).unwrap();
        f.write_at(b"hello world", 0).unwrap();
        f.write_at(b"HELLO", 6).unwrap();
        let mut buf = [0u8; 11];
        f.read_at(&mut buf, 0).unwrap();
        assert_eq!(&buf, b"hello HELLO");
        assert_eq!(f.len().unwrap(), 11);
        f.set_len(5).unwrap();
        assert_eq!(f.len().unwrap(), 5);
        f.sync().unwrap();
        assert!(vfs.exists(&dir));
        vfs.remove(&dir).unwrap();
        assert!(!vfs.exists(&dir));
    }

    #[test]
    fn fault_vfs_basic_rw() {
        let vfs = FaultVfs::new();
        let f = vfs.open(&p("a")).unwrap();
        f.write_at(b"abcdef", 0).unwrap();
        let mut buf = [0u8; 3];
        f.read_at(&mut buf, 2).unwrap();
        assert_eq!(&buf, b"cde");
        assert!(f.read_at(&mut buf, 5).is_err(), "read past EOF");
        assert_eq!(vfs.mut_ops(), 1);
        assert_eq!(vfs.read_ops(), 2);
    }

    #[test]
    fn power_cut_discards_unsynced() {
        let vfs = FaultVfs::new();
        let f = vfs.open(&p("a")).unwrap();
        f.write_at(b"synced", 0).unwrap();
        f.sync().unwrap();
        f.write_at(b"UNSYNC", 6).unwrap();
        vfs.power_cut_at(vfs.mut_ops());
        assert!(matches!(f.write_at(b"x", 12), Err(Error::FaultInjected(_))));
        assert!(vfs.crashed());
        assert!(
            matches!(f.len(), Err(Error::FaultInjected(_))),
            "post-crash I/O fails"
        );
        vfs.reset_after_crash();
        let f = vfs.open(&p("a")).unwrap();
        assert_eq!(f.len().unwrap(), 6, "only synced bytes survive");
        let mut buf = [0u8; 6];
        f.read_at(&mut buf, 0).unwrap();
        assert_eq!(&buf, b"synced");
    }

    #[test]
    fn torn_write_keeps_prefix() {
        let vfs = FaultVfs::new();
        let f = vfs.open(&p("a")).unwrap();
        f.write_at(b"0123456789", 0).unwrap();
        f.sync().unwrap();
        let mut sched = FaultSchedule::default();
        sched
            .on_mutation
            .insert(vfs.mut_ops(), Fault::TornWrite { keep: 4 });
        vfs.set_schedule(sched);
        assert!(f.write_at(b"ABCDEFGHIJ", 0).is_err());
        vfs.reset_after_crash();
        let f = vfs.open(&p("a")).unwrap();
        let mut buf = [0u8; 10];
        f.read_at(&mut buf, 0).unwrap();
        assert_eq!(&buf, b"ABCD456789", "prefix survives, rest reverts");
    }

    #[test]
    fn failed_write_is_transient() {
        let vfs = FaultVfs::new();
        let f = vfs.open(&p("a")).unwrap();
        let mut sched = FaultSchedule::default();
        sched.on_mutation.insert(0, Fault::FailWrite);
        vfs.set_schedule(sched);
        assert!(matches!(f.write_at(b"x", 0), Err(Error::FaultInjected(_))));
        assert!(!vfs.crashed());
        f.write_at(b"y", 0).unwrap();
        assert_eq!(f.len().unwrap(), 1);
    }

    #[test]
    fn bit_flip_corrupts_one_read_only() {
        let vfs = FaultVfs::new();
        let f = vfs.open(&p("a")).unwrap();
        f.write_at(&[0u8; 8], 0).unwrap();
        let mut sched = FaultSchedule::default();
        sched.on_read.insert(
            0,
            Fault::BitFlipRead {
                byte: 3,
                mask: 0x80,
            },
        );
        vfs.set_schedule(sched);
        let mut buf = [0u8; 8];
        f.read_at(&mut buf, 0).unwrap();
        assert_eq!(buf[3], 0x80, "flipped in the returned buffer");
        f.read_at(&mut buf, 0).unwrap();
        assert_eq!(buf[3], 0, "underlying bytes untouched");
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let vfs = FaultVfs::new();
            let f = vfs.open(&p("a")).unwrap();
            for i in 0..20u8 {
                if f.write_at(&[i; 16], i as u64 * 16).is_err() {
                    break;
                }
                if i % 3 == 0 && f.sync().is_err() {
                    break;
                }
            }
            (vfs.mut_ops(), vfs.durable_fingerprint())
        };
        let arm = |vfs: &FaultVfs| vfs.power_cut_at(11);
        let run_armed = || {
            let vfs = FaultVfs::new();
            arm(&vfs);
            let f = vfs.open(&p("a")).unwrap();
            for i in 0..20u8 {
                if f.write_at(&[i; 16], i as u64 * 16).is_err() {
                    break;
                }
                if i % 3 == 0 && f.sync().is_err() {
                    break;
                }
            }
            (vfs.mut_ops(), vfs.durable_fingerprint())
        };
        assert_eq!(run(), run());
        assert_eq!(run_armed(), run_armed());
        assert_ne!(run().1, run_armed().1);
    }

    #[test]
    fn rename_is_durable_swap() {
        let vfs = FaultVfs::new();
        let f = vfs.open(&p("tmp")).unwrap();
        f.write_at(b"synced", 0).unwrap();
        f.sync().unwrap();
        f.write_at(b"-tail", 6).unwrap(); // unsynced
        vfs.rename(&p("tmp"), &p("final")).unwrap();
        assert!(!vfs.exists(&p("tmp")));
        assert!(vfs.exists(&p("final")));
        // A crash immediately after the rename keeps the entry under the
        // new name with only the synced bytes.
        let st = vfs.clone();
        st.power_cut_at(st.mut_ops());
        let g = vfs.open(&p("final")).unwrap();
        assert!(g.write_at(b"x", 0).is_err());
        vfs.reset_after_crash();
        assert_eq!(vfs.durable_len(&p("final")), Some(6));
        assert!(vfs.rename(&p("missing"), &p("x")).is_err());
        // A power cut scheduled *on* the rename op leaves the old name.
        let f = vfs.open(&p("a")).unwrap();
        f.write_at(b"z", 0).unwrap();
        f.sync().unwrap();
        vfs.power_cut_at(vfs.mut_ops());
        assert!(vfs.rename(&p("a"), &p("b")).is_err());
        vfs.reset_after_crash();
        assert!(vfs.exists(&p("a")));
        assert!(!vfs.exists(&p("b")));
    }

    #[test]
    fn remove_and_exists() {
        let vfs = FaultVfs::new();
        vfs.open(&p("a")).unwrap();
        assert!(vfs.exists(&p("a")));
        assert!(!vfs.exists(&p("b")));
        vfs.remove(&p("a")).unwrap();
        assert!(!vfs.exists(&p("a")));
        assert!(vfs.remove(&p("a")).is_err());
    }
}
