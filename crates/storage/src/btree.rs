//! A disk-resident B⁺-tree over fixed-width composite keys.
//!
//! Used for every ordered access path in the engine: atom directories
//! (`atom_no → version-chain head`), attribute value indexes
//! (`(encoded value, rid) → rid`) and the time index
//! (`(tt_start, rid) → rid`).
//!
//! Layout:
//!
//! * page 0 — meta: magic, root page id, entry count;
//! * leaves — sorted `(key.hi, key.lo, value)` triples (24 bytes each) plus
//!   a `next_leaf` pointer forming the scan chain;
//! * internals — sorted separator keys with child pointers; child `i`
//!   covers keys in `[key[i-1], key[i])` (child 0 covers `< key[0]`).
//!
//! Concurrency: node modifications assume a single writer (the engine
//! serializes DML); readers are safe against concurrent readers. Deletion
//! is *lazy* — entries are removed but nodes are never merged, a policy
//! many production trees (e.g. PostgreSQL pre-vacuum) share; after a mass
//! removal, [`BTree::compact`] repacks the survivors into dense nodes so
//! scans stop paying for emptied pages.

use crate::buffer::{BufferPool, FileId};
use crate::keys::BKey;
use crate::page::{Page, PageKind, PAGE_SIZE};
use std::sync::Arc;
use tcom_kernel::{Error, PageId, Result};

const BTREE_MAGIC: u64 = 0x5443_4254_5245_0001; // "TCBTREE" v1

// Meta page offsets.
const META_MAGIC: usize = 8;
const META_ROOT: usize = 16;
const META_COUNT: usize = 24;

// Node header offsets (after the 8-byte common page header).
const NODE_NKEYS: usize = 8;
const NODE_NEXT: usize = 12; // leaves only: next-leaf page id
const ENTRIES: usize = 16;

const LEAF_STRIDE: usize = 24; // hi(8) lo(8) val(8)
const INT_STRIDE: usize = 20; // hi(8) lo(8) child(4)

/// Maximum entries in a leaf node at the default fanout.
pub const LEAF_CAP: usize = (PAGE_SIZE - ENTRIES) / LEAF_STRIDE;
/// Maximum separator entries in an internal node at the default fanout.
pub const INT_CAP: usize = (PAGE_SIZE - ENTRIES - 4) / INT_STRIDE;

/// A disk-resident B⁺-tree bound to one buffer-pool file.
pub struct BTree {
    pool: Arc<BufferPool>,
    file: FileId,
    leaf_cap: usize,
    int_cap: usize,
}

#[derive(Clone)]
struct LeafNode {
    entries: Vec<(BKey, u64)>,
    next: PageId,
}

#[derive(Clone)]
struct IntNode {
    /// children.len() == keys.len() + 1
    keys: Vec<BKey>,
    children: Vec<PageId>,
}

impl BTree {
    /// Formats a fresh tree (meta page + empty root leaf).
    pub fn create(pool: Arc<BufferPool>, file: FileId) -> Result<BTree> {
        let t = BTree {
            pool,
            file,
            leaf_cap: LEAF_CAP,
            int_cap: INT_CAP,
        };
        {
            let (meta_id, mut meta) = t.pool.create(file, PageKind::Meta)?;
            if meta_id != PageId(0) {
                return Err(Error::internal("btree meta page must be page 0"));
            }
            meta.write_u64(META_MAGIC, BTREE_MAGIC);
            meta.write_u64(META_COUNT, 0);
        }
        let root = t.alloc_leaf(LeafNode {
            entries: Vec::new(),
            next: PageId::INVALID,
        })?;
        {
            let mut meta = t.pool.fetch_write(file, PageId(0))?;
            meta.write_u32(META_ROOT, root.0);
        }
        Ok(t)
    }

    /// Opens an existing tree, validating the meta page.
    pub fn open(pool: Arc<BufferPool>, file: FileId) -> Result<BTree> {
        {
            let meta = pool.fetch_read(file, PageId(0))?;
            if meta.read_u64(META_MAGIC) != BTREE_MAGIC {
                return Err(Error::corruption("bad btree file magic"));
            }
        }
        Ok(BTree {
            pool,
            file,
            leaf_cap: LEAF_CAP,
            int_cap: INT_CAP,
        })
    }

    /// Test/ablation hook: restricts node fanout so that splits are
    /// exercised with small key counts. Caps below 2 are rejected.
    pub fn with_fanout(mut self, leaf_cap: usize, int_cap: usize) -> BTree {
        assert!(leaf_cap >= 2 && int_cap >= 2, "fanout must be at least 2");
        self.leaf_cap = leaf_cap.min(LEAF_CAP);
        self.int_cap = int_cap.min(INT_CAP);
        self
    }

    fn root(&self) -> Result<PageId> {
        let meta = self.pool.fetch_read(self.file, PageId(0))?;
        Ok(PageId(meta.read_u32(META_ROOT)))
    }

    fn set_root(&self, root: PageId) -> Result<()> {
        let mut meta = self.pool.fetch_write(self.file, PageId(0))?;
        meta.write_u32(META_ROOT, root.0);
        Ok(())
    }

    /// Number of entries.
    pub fn len(&self) -> Result<u64> {
        let meta = self.pool.fetch_read(self.file, PageId(0))?;
        Ok(meta.read_u64(META_COUNT))
    }

    /// True iff the tree has no entries.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    fn bump_count(&self, delta: i64) -> Result<()> {
        let mut meta = self.pool.fetch_write(self.file, PageId(0))?;
        let c = meta.read_u64(META_COUNT) as i64 + delta;
        meta.write_u64(META_COUNT, c as u64);
        Ok(())
    }

    // ---- node (de)serialization ----

    fn load_leaf(page: &Page) -> Result<LeafNode> {
        let n = page.read_u16(NODE_NKEYS) as usize;
        if ENTRIES + n * LEAF_STRIDE > PAGE_SIZE {
            return Err(Error::corruption("leaf nkeys out of range"));
        }
        let mut entries = Vec::with_capacity(n);
        for i in 0..n {
            let off = ENTRIES + i * LEAF_STRIDE;
            entries.push((
                BKey::new(page.read_u64(off), page.read_u64(off + 8)),
                page.read_u64(off + 16),
            ));
        }
        Ok(LeafNode {
            entries,
            next: PageId(page.read_u32(NODE_NEXT)),
        })
    }

    fn store_leaf(page: &mut Page, node: &LeafNode) {
        page.set_kind(PageKind::BTreeLeaf);
        page.write_u16(NODE_NKEYS, node.entries.len() as u16);
        page.write_u32(NODE_NEXT, node.next.0);
        for (i, (k, v)) in node.entries.iter().enumerate() {
            let off = ENTRIES + i * LEAF_STRIDE;
            page.write_u64(off, k.hi);
            page.write_u64(off + 8, k.lo);
            page.write_u64(off + 16, *v);
        }
    }

    fn load_int(page: &Page) -> Result<IntNode> {
        let n = page.read_u16(NODE_NKEYS) as usize;
        if ENTRIES + n * INT_STRIDE + 4 > PAGE_SIZE {
            return Err(Error::corruption("internal nkeys out of range"));
        }
        let mut keys = Vec::with_capacity(n);
        let mut children = Vec::with_capacity(n + 1);
        children.push(PageId(page.read_u32(NODE_NEXT))); // child0 reuses the slot
        for i in 0..n {
            let off = ENTRIES + i * INT_STRIDE;
            keys.push(BKey::new(page.read_u64(off), page.read_u64(off + 8)));
            children.push(PageId(page.read_u32(off + 16)));
        }
        Ok(IntNode { keys, children })
    }

    fn store_int(page: &mut Page, node: &IntNode) {
        debug_assert_eq!(node.children.len(), node.keys.len() + 1);
        page.set_kind(PageKind::BTreeInternal);
        page.write_u16(NODE_NKEYS, node.keys.len() as u16);
        page.write_u32(NODE_NEXT, node.children[0].0);
        for (i, k) in node.keys.iter().enumerate() {
            let off = ENTRIES + i * INT_STRIDE;
            page.write_u64(off, k.hi);
            page.write_u64(off + 8, k.lo);
            page.write_u32(off + 16, node.children[i + 1].0);
        }
    }

    fn alloc_leaf(&self, node: LeafNode) -> Result<PageId> {
        let (pid, mut page) = self.pool.create(self.file, PageKind::BTreeLeaf)?;
        Self::store_leaf(&mut page, &node);
        Ok(pid)
    }

    fn alloc_int(&self, node: IntNode) -> Result<PageId> {
        let (pid, mut page) = self.pool.create(self.file, PageKind::BTreeInternal)?;
        Self::store_int(&mut page, &node);
        Ok(pid)
    }

    fn node_kind(&self, pid: PageId) -> Result<PageKind> {
        let page = self.pool.fetch_read(self.file, pid)?;
        page.kind()
    }

    // ---- point operations ----

    /// Looks up a key.
    pub fn get(&self, key: BKey) -> Result<Option<u64>> {
        let mut pid = self.root()?;
        loop {
            let page = self.pool.fetch_read(self.file, pid)?;
            match page.kind()? {
                PageKind::BTreeInternal => {
                    let node = Self::load_int(&page)?;
                    pid = node.children[child_index(&node.keys, key)];
                }
                PageKind::BTreeLeaf => {
                    let node = Self::load_leaf(&page)?;
                    return Ok(node
                        .entries
                        .binary_search_by_key(&key, |e| e.0)
                        .ok()
                        .map(|i| node.entries[i].1));
                }
                k => {
                    return Err(Error::corruption(format!(
                        "unexpected page kind {k:?} in btree"
                    )))
                }
            }
        }
    }

    /// Inserts or replaces; returns the previous value if the key existed.
    pub fn insert(&self, key: BKey, value: u64) -> Result<Option<u64>> {
        let root = self.root()?;
        let (old, split) = self.insert_rec(root, key, value)?;
        if let Some((sep, new_child)) = split {
            let new_root = self.alloc_int(IntNode {
                keys: vec![sep],
                children: vec![root, new_child],
            })?;
            self.set_root(new_root)?;
        }
        if old.is_none() {
            self.bump_count(1)?;
        }
        Ok(old)
    }

    #[allow(clippy::type_complexity)]
    fn insert_rec(
        &self,
        pid: PageId,
        key: BKey,
        value: u64,
    ) -> Result<(Option<u64>, Option<(BKey, PageId)>)> {
        match self.node_kind(pid)? {
            PageKind::BTreeLeaf => {
                let mut page = self.pool.fetch_write(self.file, pid)?;
                let mut node = Self::load_leaf(&page)?;
                match node.entries.binary_search_by_key(&key, |e| e.0) {
                    Ok(i) => {
                        let old = node.entries[i].1;
                        node.entries[i].1 = value;
                        Self::store_leaf(&mut page, &node);
                        Ok((Some(old), None))
                    }
                    Err(i) => {
                        node.entries.insert(i, (key, value));
                        if node.entries.len() <= self.leaf_cap {
                            Self::store_leaf(&mut page, &node);
                            return Ok((None, None));
                        }
                        // Split: upper half moves to a fresh right sibling.
                        let mid = node.entries.len() / 2;
                        let right_entries = node.entries.split_off(mid);
                        let sep = right_entries[0].0;
                        let right = LeafNode {
                            entries: right_entries,
                            next: node.next,
                        };
                        drop(page); // release latch before allocating
                        let right_id = self.alloc_leaf(right)?;
                        let mut page = self.pool.fetch_write(self.file, pid)?;
                        node.next = right_id;
                        Self::store_leaf(&mut page, &node);
                        Ok((None, Some((sep, right_id))))
                    }
                }
            }
            PageKind::BTreeInternal => {
                let node = {
                    let page = self.pool.fetch_read(self.file, pid)?;
                    Self::load_int(&page)?
                };
                let ci = child_index(&node.keys, key);
                let (old, split) = self.insert_rec(node.children[ci], key, value)?;
                let Some((sep, new_child)) = split else {
                    return Ok((old, None));
                };
                // Reload: the child insert may have restructured nothing at
                // this level, but stay defensive about ordering.
                let mut page = self.pool.fetch_write(self.file, pid)?;
                let mut node = Self::load_int(&page)?;
                let pos = child_index(&node.keys, sep);
                node.keys.insert(pos, sep);
                node.children.insert(pos + 1, new_child);
                if node.keys.len() <= self.int_cap {
                    Self::store_int(&mut page, &node);
                    return Ok((old, None));
                }
                // Split internal node: the middle key moves *up*.
                let mid = node.keys.len() / 2;
                let up_key = node.keys[mid];
                let right = IntNode {
                    keys: node.keys.split_off(mid + 1),
                    children: node.children.split_off(mid + 1),
                };
                node.keys.pop(); // the up_key leaves this node
                Self::store_int(&mut page, &node);
                drop(page);
                let right_id = self.alloc_int(right)?;
                Ok((old, Some((up_key, right_id))))
            }
            k => Err(Error::corruption(format!(
                "unexpected page kind {k:?} in btree"
            ))),
        }
    }

    /// Removes a key; returns its value if present. Lazy (no rebalancing).
    pub fn remove(&self, key: BKey) -> Result<Option<u64>> {
        let mut pid = self.root()?;
        loop {
            match self.node_kind(pid)? {
                PageKind::BTreeInternal => {
                    let page = self.pool.fetch_read(self.file, pid)?;
                    let node = Self::load_int(&page)?;
                    pid = node.children[child_index(&node.keys, key)];
                }
                PageKind::BTreeLeaf => {
                    let mut page = self.pool.fetch_write(self.file, pid)?;
                    let mut node = Self::load_leaf(&page)?;
                    return match node.entries.binary_search_by_key(&key, |e| e.0) {
                        Ok(i) => {
                            let (_, v) = node.entries.remove(i);
                            Self::store_leaf(&mut page, &node);
                            drop(page);
                            self.bump_count(-1)?;
                            Ok(Some(v))
                        }
                        Err(_) => Ok(None),
                    };
                }
                k => {
                    return Err(Error::corruption(format!(
                        "unexpected page kind {k:?} in btree"
                    )))
                }
            }
        }
    }

    // ---- range operations ----

    /// Calls `f(key, value)` for every entry with `lo <= key < hi`, in key
    /// order. `f` returning `false` stops the scan.
    pub fn scan_range(
        &self,
        lo: BKey,
        hi: BKey,
        mut f: impl FnMut(BKey, u64) -> Result<bool>,
    ) -> Result<()> {
        // Descend to the leaf that would contain `lo`.
        let mut pid = self.root()?;
        loop {
            let page = self.pool.fetch_read(self.file, pid)?;
            match page.kind()? {
                PageKind::BTreeInternal => {
                    let node = Self::load_int(&page)?;
                    pid = node.children[child_index(&node.keys, lo)];
                }
                PageKind::BTreeLeaf => break,
                k => {
                    return Err(Error::corruption(format!(
                        "unexpected page kind {k:?} in btree"
                    )))
                }
            }
        }
        // Walk the leaf chain.
        loop {
            let node = {
                let page = self.pool.fetch_read(self.file, pid)?;
                Self::load_leaf(&page)?
            };
            for (k, v) in &node.entries {
                if *k < lo {
                    continue;
                }
                if *k >= hi {
                    return Ok(());
                }
                if !f(*k, *v)? {
                    return Ok(());
                }
            }
            if node.next.is_invalid() {
                return Ok(());
            }
            pid = node.next;
        }
    }

    /// Collects a range into a vector (convenience for small ranges).
    pub fn range_vec(&self, lo: BKey, hi: BKey) -> Result<Vec<(BKey, u64)>> {
        let mut out = Vec::new();
        self.scan_range(lo, hi, |k, v| {
            out.push((k, v));
            Ok(true)
        })?;
        Ok(out)
    }

    /// The smallest entry, if any.
    pub fn first(&self) -> Result<Option<(BKey, u64)>> {
        let mut out = None;
        self.scan_range(BKey::MIN, BKey::MAX, |k, v| {
            out = Some((k, v));
            Ok(false)
        })?;
        Ok(out)
    }

    /// Repacks the tree into dense nodes, reusing its existing pages.
    ///
    /// Lazy deletion leaves emptied leaves on the scan chain, so after a
    /// mass removal (say, a segment swap pruning most of a time index)
    /// range scans still walk every historical leaf page. Compaction
    /// collects the live entries, packs them into full leaves over the
    /// tree's own pages, and rebuilds the internal levels above them.
    /// Pages the dense form no longer needs stay allocated — the file
    /// never shrinks — but become unreachable from the new root, so
    /// probes and scans touch only dense nodes afterwards.
    ///
    /// Callers must hold exclusive access (same single-writer contract as
    /// `insert`/`remove`): the rebuild overwrites nodes the old root
    /// still references before the root pointer moves.
    pub fn compact(&self) -> Result<()> {
        let entries = self.range_vec(BKey::MIN, BKey::MAX)?;
        let mut reusable = Vec::new();
        self.collect_pages(self.root()?, &mut reusable)?;
        let mut free = reusable.into_iter();
        let mut take = |pool: &Arc<BufferPool>, file: FileId| -> Result<PageId> {
            match free.next() {
                Some(pid) => Ok(pid),
                None => Ok(pool.create(file, PageKind::BTreeLeaf)?.0),
            }
        };

        // Leaf level: full leaves chained in key order (one empty leaf
        // when the tree holds nothing).
        let chunks: Vec<&[(BKey, u64)]> = if entries.is_empty() {
            vec![&[]]
        } else {
            entries.chunks(self.leaf_cap).collect()
        };
        let ids: Vec<PageId> = chunks
            .iter()
            .map(|_| take(&self.pool, self.file))
            .collect::<Result<_>>()?;
        let mut level: Vec<(BKey, PageId)> = Vec::with_capacity(ids.len());
        for (i, chunk) in chunks.iter().enumerate() {
            let node = LeafNode {
                entries: chunk.to_vec(),
                next: ids.get(i + 1).copied().unwrap_or(PageId::INVALID),
            };
            let mut page = self.pool.fetch_write(self.file, ids[i])?;
            Self::store_leaf(&mut page, &node);
            level.push((chunk.first().map_or(BKey::MIN, |e| e.0), ids[i]));
        }

        // Internal levels: each node takes up to `int_cap + 1` children;
        // the first child's low key becomes the node's own low key one
        // level up, the rest become its separators.
        while level.len() > 1 {
            let mut above = Vec::with_capacity(level.len() / (self.int_cap + 1) + 1);
            for group in level.chunks(self.int_cap + 1) {
                let node = IntNode {
                    keys: group[1..].iter().map(|(k, _)| *k).collect(),
                    children: group.iter().map(|(_, pid)| *pid).collect(),
                };
                let pid = take(&self.pool, self.file)?;
                let mut page = self.pool.fetch_write(self.file, pid)?;
                Self::store_int(&mut page, &node);
                above.push((group[0].0, pid));
            }
            level = above;
        }
        self.set_root(level[0].1)
    }

    /// Every node page of the subtree rooted at `pid` (pre-order).
    fn collect_pages(&self, pid: PageId, out: &mut Vec<PageId>) -> Result<()> {
        out.push(pid);
        let children = {
            let page = self.pool.fetch_read(self.file, pid)?;
            match page.kind()? {
                PageKind::BTreeInternal => Self::load_int(&page)?.children,
                _ => return Ok(()),
            }
        };
        for c in children {
            self.collect_pages(c, out)?;
        }
        Ok(())
    }

    /// Height of the tree (1 = root is a leaf). Diagnostic.
    pub fn height(&self) -> Result<u32> {
        let mut h = 1;
        let mut pid = self.root()?;
        loop {
            let page = self.pool.fetch_read(self.file, pid)?;
            match page.kind()? {
                PageKind::BTreeInternal => {
                    let node = Self::load_int(&page)?;
                    pid = node.children[0];
                    h += 1;
                }
                _ => return Ok(h),
            }
        }
    }
}

/// Index of the child subtree that covers `key`:
/// number of separator keys `<= key`.
fn child_index(keys: &[BKey], key: BKey) -> usize {
    match keys.binary_search(&key) {
        Ok(i) => i + 1,
        Err(i) => i,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskManager;
    use std::path::PathBuf;

    fn tmpfile(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("tcom-bt-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn tree(name: &str, frames: usize) -> (BTree, PathBuf) {
        let path = tmpfile(name);
        let dm = Arc::new(DiskManager::open(&path).unwrap());
        let pool = BufferPool::new(frames);
        let file = pool.register_file(dm);
        (BTree::create(pool, file).unwrap(), path)
    }

    fn k(hi: u64) -> BKey {
        BKey::new(hi, 0)
    }

    #[test]
    fn empty_tree() {
        let (t, path) = tree("empty", 8);
        assert!(t.is_empty().unwrap());
        assert_eq!(t.get(k(5)).unwrap(), None);
        assert_eq!(t.remove(k(5)).unwrap(), None);
        assert_eq!(t.first().unwrap(), None);
        assert_eq!(t.height().unwrap(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn insert_get_replace() {
        let (t, path) = tree("igr", 8);
        assert_eq!(t.insert(k(10), 100).unwrap(), None);
        assert_eq!(t.insert(k(20), 200).unwrap(), None);
        assert_eq!(t.get(k(10)).unwrap(), Some(100));
        assert_eq!(t.insert(k(10), 111).unwrap(), Some(100));
        assert_eq!(t.get(k(10)).unwrap(), Some(111));
        assert_eq!(t.len().unwrap(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn leaf_splits_preserve_order() {
        let (t, path) = tree("split", 32);
        let t = t.with_fanout(4, 4);
        for i in (0..100u64).rev() {
            t.insert(k(i), i * 2).unwrap();
        }
        assert!(t.height().unwrap() > 2);
        for i in 0..100u64 {
            assert_eq!(t.get(k(i)).unwrap(), Some(i * 2), "key {i}");
        }
        let all = t.range_vec(BKey::MIN, BKey::MAX).unwrap();
        assert_eq!(all.len(), 100);
        for (i, (key, val)) in all.iter().enumerate() {
            assert_eq!(key.hi, i as u64);
            assert_eq!(*val, i as u64 * 2);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn random_inserts_match_model() {
        use rand::prelude::*;
        let (t, path) = tree("model", 64);
        let t = t.with_fanout(8, 8);
        let mut rng = StdRng::seed_from_u64(42);
        let mut model = std::collections::BTreeMap::new();
        for _ in 0..3000 {
            let key = BKey::new(rng.gen_range(0..500), rng.gen_range(0..4));
            let val: u64 = rng.gen_range(0..1_000_000);
            let expect_old = model.insert(key, val);
            assert_eq!(t.insert(key, val).unwrap(), expect_old);
        }
        assert_eq!(t.len().unwrap(), model.len() as u64);
        for (key, val) in &model {
            assert_eq!(t.get(*key).unwrap(), Some(*val));
        }
        let all = t.range_vec(BKey::MIN, BKey::MAX).unwrap();
        let expect: Vec<(BKey, u64)> = model.iter().map(|(kk, vv)| (*kk, *vv)).collect();
        assert_eq!(all, expect);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn random_mixed_ops_match_model() {
        use rand::prelude::*;
        let (t, path) = tree("mixed", 64);
        let t = t.with_fanout(6, 6);
        let mut rng = StdRng::seed_from_u64(7);
        let mut model = std::collections::BTreeMap::new();
        for step in 0..5000 {
            let key = BKey::new(rng.gen_range(0..300), 0);
            if rng.gen_bool(0.6) {
                let val: u64 = step;
                assert_eq!(t.insert(key, val).unwrap(), model.insert(key, val));
            } else {
                assert_eq!(t.remove(key).unwrap(), model.remove(&key));
            }
        }
        assert_eq!(t.len().unwrap(), model.len() as u64);
        let all = t.range_vec(BKey::MIN, BKey::MAX).unwrap();
        let expect: Vec<(BKey, u64)> = model.iter().map(|(kk, vv)| (*kk, *vv)).collect();
        assert_eq!(all, expect);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn range_scan_bounds() {
        let (t, path) = tree("range", 32);
        let t = t.with_fanout(4, 4);
        for i in 0..50u64 {
            t.insert(k(i * 10), i).unwrap();
        }
        // [100, 200) -> keys 100,110,...,190
        let r = t.range_vec(k(100), k(200)).unwrap();
        assert_eq!(r.len(), 10);
        assert_eq!(r[0].0, k(100));
        assert_eq!(r[9].0, k(190));
        // empty range
        assert!(t.range_vec(k(5), k(9)).unwrap().is_empty());
        // early stop
        let mut n = 0;
        t.scan_range(BKey::MIN, BKey::MAX, |_, _| {
            n += 1;
            Ok(n < 7)
        })
        .unwrap();
        assert_eq!(n, 7);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn duplicate_hi_disambiguated_by_lo() {
        let (t, path) = tree("dup", 16);
        for lo in 0..20u64 {
            t.insert(BKey::new(42, lo), lo + 1000).unwrap();
        }
        t.insert(k(41), 1).unwrap();
        t.insert(k(43), 2).unwrap();
        let r = t.range_vec(BKey::min_for(42), BKey::max_for(42)).unwrap();
        assert_eq!(r.len(), 20);
        assert!(r
            .iter()
            .enumerate()
            .all(|(i, (key, v))| key.lo == i as u64 && *v == i as u64 + 1000));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn persists_across_reopen() {
        let path = tmpfile("persist");
        {
            let dm = Arc::new(DiskManager::open(&path).unwrap());
            let pool = BufferPool::new(16);
            let file = pool.register_file(dm);
            let t = BTree::create(pool.clone(), file).unwrap().with_fanout(4, 4);
            for i in 0..200u64 {
                t.insert(k(i), i + 7).unwrap();
            }
            pool.flush_and_sync().unwrap();
        }
        {
            let dm = Arc::new(DiskManager::open(&path).unwrap());
            let pool = BufferPool::new(16);
            let file = pool.register_file(dm);
            let t = BTree::open(pool, file).unwrap();
            assert_eq!(t.len().unwrap(), 200);
            for i in 0..200u64 {
                assert_eq!(t.get(k(i)).unwrap(), Some(i + 7));
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compact_after_mass_removal_densifies() {
        let (t, path) = tree("compact", 256);
        let t = t.with_fanout(4, 4);
        for i in 0..2000u64 {
            t.insert(k(i), i).unwrap();
        }
        let tall = t.height().unwrap();
        // Remove 95%: lazy deletion keeps every leaf on the chain.
        for i in 0..2000u64 {
            if i % 20 != 0 {
                t.remove(k(i)).unwrap();
            }
        }
        assert_eq!(t.height().unwrap(), tall, "removal never restructures");
        t.compact().unwrap();
        assert!(
            t.height().unwrap() < tall,
            "dense form of 100 entries must be shorter than the 2000-entry tree"
        );
        assert_eq!(t.len().unwrap(), 100);
        let all = t.range_vec(BKey::MIN, BKey::MAX).unwrap();
        assert_eq!(all.len(), 100);
        for (i, (key, val)) in all.iter().enumerate() {
            assert_eq!(key.hi, i as u64 * 20);
            assert_eq!(*val, i as u64 * 20);
        }
        for i in 0..2000u64 {
            assert_eq!(t.get(k(i)).unwrap(), (i % 20 == 0).then_some(i), "key {i}");
        }
        // The compacted tree keeps working as a live index.
        for i in 0..500u64 {
            t.insert(k(i * 2 + 100_000), i).unwrap();
        }
        assert_eq!(t.len().unwrap(), 600);
        assert_eq!(
            t.range_vec(k(100_000), BKey::MAX).unwrap().len(),
            500,
            "post-compact inserts must be scannable"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compact_empty_and_full_trees() {
        let (t, path) = tree("compact-edge", 64);
        let t = t.with_fanout(4, 4);
        t.compact().unwrap();
        assert!(t.is_empty().unwrap());
        assert_eq!(t.height().unwrap(), 1);
        for i in 0..300u64 {
            t.insert(k(i), i).unwrap();
        }
        // Compacting with nothing removed is a harmless repack.
        t.compact().unwrap();
        assert_eq!(t.len().unwrap(), 300);
        let all = t.range_vec(BKey::MIN, BKey::MAX).unwrap();
        assert_eq!(all.len(), 300);
        assert!(all
            .iter()
            .enumerate()
            .all(|(i, (key, _))| key.hi == i as u64));
        // Remove everything: the dense form is a single empty leaf.
        for i in 0..300u64 {
            t.remove(k(i)).unwrap();
        }
        t.compact().unwrap();
        assert_eq!(t.height().unwrap(), 1);
        assert!(t.range_vec(BKey::MIN, BKey::MAX).unwrap().is_empty());
        t.insert(k(7), 7).unwrap();
        assert_eq!(t.get(k(7)).unwrap(), Some(7));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compact_survives_reopen() {
        let path = tmpfile("compact-persist");
        {
            let dm = Arc::new(DiskManager::open(&path).unwrap());
            let pool = BufferPool::new(64);
            let file = pool.register_file(dm);
            let t = BTree::create(pool.clone(), file).unwrap().with_fanout(4, 4);
            for i in 0..1000u64 {
                t.insert(k(i), i + 1).unwrap();
            }
            for i in 0..1000u64 {
                if i % 10 != 0 {
                    t.remove(k(i)).unwrap();
                }
            }
            t.compact().unwrap();
            pool.flush_and_sync().unwrap();
        }
        {
            let dm = Arc::new(DiskManager::open(&path).unwrap());
            let pool = BufferPool::new(64);
            let file = pool.register_file(dm);
            let t = BTree::open(pool, file).unwrap();
            assert_eq!(t.len().unwrap(), 100);
            for i in (0..1000u64).step_by(10) {
                assert_eq!(t.get(k(i)).unwrap(), Some(i + 1));
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn full_fanout_bulk() {
        let (t, path) = tree("bulk", 256);
        for i in 0..20_000u64 {
            t.insert(k(i.wrapping_mul(2_654_435_761) % 1_000_003), i)
                .unwrap();
        }
        assert!(t.height().unwrap() >= 2);
        // All lookups succeed.
        for i in 0..20_000u64 {
            let key = k(i.wrapping_mul(2_654_435_761) % 1_000_003);
            assert!(t.get(key).unwrap().is_some());
        }
        let _ = std::fs::remove_file(&path);
    }
}
