//! Heap files: unordered collections of variable-length records on slotted
//! pages, accessed through the buffer pool.
//!
//! Page 0 of a heap file is a meta page (magic + format); data pages start
//! at page 1. Free space is tracked by an in-memory advisory cache that is
//! populated as pages are touched; [`HeapFile::vacuum_scan`] rebuilds it
//! exhaustively. Records keep their [`RecordId`] for their lifetime unless
//! an update outgrows the page, in which case [`HeapFile::update`] returns
//! the record's new address and the caller (atom directory, version store)
//! re-points its references — exactly the "forwarding is the access path's
//! problem" policy classic storage systems use.

use crate::buffer::{BufferPool, FileId};
use crate::page::PageKind;
use crate::slotted::{SlottedPage, SlottedRef};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use tcom_kernel::{Error, PageId, RecordId, Result};

const HEAP_MAGIC: u64 = 0x5443_4845_4150_0001; // "TCHEAP" v1

/// A heap file bound to one registered buffer-pool file.
pub struct HeapFile {
    pool: Arc<BufferPool>,
    file: FileId,
    /// Advisory free-space cache: page → contiguous free bytes (approx).
    fsm: Mutex<BTreeMap<PageId, usize>>,
}

impl HeapFile {
    /// Formats a fresh heap file (writes the meta page).
    pub fn create(pool: Arc<BufferPool>, file: FileId) -> Result<HeapFile> {
        {
            let (pid, mut meta) = pool.create(file, PageKind::Meta)?;
            if pid != PageId(0) {
                return Err(Error::internal("heap meta page must be page 0"));
            }
            meta.write_u64(8, HEAP_MAGIC);
        }
        Ok(HeapFile {
            pool,
            file,
            fsm: Mutex::new(BTreeMap::new()),
        })
    }

    /// Opens an existing heap file, validating the meta page.
    pub fn open(pool: Arc<BufferPool>, file: FileId) -> Result<HeapFile> {
        {
            let meta = pool.fetch_read(file, PageId(0))?;
            if meta.read_u64(8) != HEAP_MAGIC {
                return Err(Error::corruption("bad heap file magic"));
            }
        }
        Ok(HeapFile {
            pool,
            file,
            fsm: Mutex::new(BTreeMap::new()),
        })
    }

    /// The buffer-pool file id backing this heap.
    pub fn file_id(&self) -> FileId {
        self.file
    }

    /// Number of data pages currently allocated.
    pub fn data_pages(&self) -> u32 {
        self.page_count().saturating_sub(1)
    }

    /// Number of this file's pages currently resident in the buffer pool
    /// (statistics snapshot; see [`BufferPool::resident_pages`]).
    pub fn resident_pages(&self) -> u64 {
        self.pool.resident_pages(self.file)
    }

    fn page_count(&self) -> u32 {
        // The pool's disk manager is authoritative for the file length.
        self.pool.file_page_count(self.file)
    }

    /// Picks a page with at least `need` free bytes from the cache.
    fn cached_page_with_space(&self, need: usize) -> Option<PageId> {
        let fsm = self.fsm.lock();
        fsm.iter()
            .find(|(_, &free)| free >= need)
            .map(|(&pid, _)| pid)
    }

    fn note_free(&self, pid: PageId, free: usize) {
        self.fsm.lock().insert(pid, free);
    }

    /// Inserts a record, returning its address.
    pub fn insert(&self, rec: &[u8]) -> Result<RecordId> {
        // The slot entry itself needs 4 bytes; ask for a little headroom.
        let need = rec.len() + 8;
        // 1. A cached page with space.
        if let Some(pid) = self.cached_page_with_space(need) {
            let mut page = self.pool.fetch_write(self.file, pid)?;
            let mut sp = SlottedPage::attach(&mut page)?;
            if let Some(slot) = sp.insert(rec)? {
                let free = sp.total_free();
                drop(page);
                self.note_free(pid, free);
                return Ok(RecordId::new(pid, slot));
            }
            // Cache was optimistic; fix it and fall through.
            let free = sp.total_free();
            drop(page);
            self.note_free(pid, free);
        }
        // 2. The last data page (covers the fresh-file and append workload).
        let count = self.page_count();
        if count > 1 {
            let pid = PageId(count - 1);
            let mut page = self.pool.fetch_write(self.file, pid)?;
            if let Ok(mut sp) = SlottedPage::attach(&mut page) {
                if let Some(slot) = sp.insert(rec)? {
                    let free = sp.total_free();
                    drop(page);
                    self.note_free(pid, free);
                    return Ok(RecordId::new(pid, slot));
                }
            }
        }
        // 3. Allocate a new page.
        let (pid, mut page) = self.pool.create(self.file, PageKind::Slotted)?;
        let mut sp = SlottedPage::init(&mut page);
        let slot = sp.insert(rec)?.ok_or(Error::RecordTooLarge(rec.len()))?;
        let free = sp.total_free();
        drop(page);
        self.note_free(pid, free);
        Ok(RecordId::new(pid, slot))
    }

    /// Reads a record into an owned buffer.
    pub fn get(&self, rid: RecordId) -> Result<Vec<u8>> {
        self.with_record(rid, |r| r.to_vec())
    }

    /// Zero-copy record access under a shared page latch.
    pub fn with_record<T>(&self, rid: RecordId, f: impl FnOnce(&[u8]) -> T) -> Result<T> {
        let page = self.pool.fetch_read(self.file, rid.page)?;
        let sp = SlottedRef::attach(&page)?;
        Ok(f(sp.get(rid.slot)?))
    }

    /// True iff the record exists.
    pub fn exists(&self, rid: RecordId) -> Result<bool> {
        if rid.is_invalid() || rid.page.0 == 0 || rid.page.0 >= self.page_count() {
            return Ok(false);
        }
        let page = self.pool.fetch_read(self.file, rid.page)?;
        let sp = SlottedRef::attach(&page)?;
        Ok(sp.is_live(rid.slot))
    }

    /// Updates a record in place when possible; relocates it otherwise.
    /// Returns the (possibly new) address.
    pub fn update(&self, rid: RecordId, rec: &[u8]) -> Result<RecordId> {
        {
            let mut page = self.pool.fetch_write(self.file, rid.page)?;
            let mut sp = SlottedPage::attach(&mut page)?;
            if sp.update(rid.slot, rec)? {
                let free = sp.total_free();
                drop(page);
                self.note_free(rid.page, free);
                return Ok(rid);
            }
        }
        // Outgrew the page: relocate.
        self.delete(rid)?;
        self.insert(rec)
    }

    /// Deletes a record.
    pub fn delete(&self, rid: RecordId) -> Result<()> {
        let mut page = self.pool.fetch_write(self.file, rid.page)?;
        let mut sp = SlottedPage::attach(&mut page)?;
        sp.delete(rid.slot)?;
        let free = sp.total_free();
        drop(page);
        self.note_free(rid.page, free);
        Ok(())
    }

    /// Full scan: calls `f` for every live record. `f` returning `false`
    /// stops the scan early.
    pub fn scan(&self, mut f: impl FnMut(RecordId, &[u8]) -> Result<bool>) -> Result<()> {
        let count = self.page_count();
        for p in 1..count {
            let pid = PageId(p);
            let page = self.pool.fetch_read(self.file, pid)?;
            let sp = match SlottedRef::attach(&page) {
                Ok(sp) => sp,
                Err(_) => continue, // non-data page (none today, future-proof)
            };
            for (slot, rec) in sp.iter() {
                if !f(RecordId::new(pid, slot), rec)? {
                    return Ok(());
                }
            }
        }
        Ok(())
    }

    /// Rebuilds the free-space cache by scanning every data page. Returns
    /// the number of live records seen.
    pub fn vacuum_scan(&self) -> Result<u64> {
        let count = self.page_count();
        let mut live = 0u64;
        let mut fsm = BTreeMap::new();
        for p in 1..count {
            let pid = PageId(p);
            let page = self.pool.fetch_read(self.file, pid)?;
            if let Ok(sp) = SlottedRef::attach(&page) {
                live += sp.live_count() as u64;
                fsm.insert(pid, sp.total_free());
            }
        }
        *self.fsm.lock() = fsm;
        Ok(live)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskManager;
    use std::path::PathBuf;
    use tcom_kernel::SlotId;

    fn tmpfile(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("tcom-heap-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn heap(name: &str) -> (HeapFile, PathBuf) {
        let path = tmpfile(name);
        let dm = Arc::new(DiskManager::open(&path).unwrap());
        let pool = BufferPool::new(16);
        let file = pool.register_file(dm);
        (HeapFile::create(pool, file).unwrap(), path)
    }

    #[test]
    fn insert_get_many() {
        let (h, path) = heap("many");
        let mut rids = Vec::new();
        for i in 0..500u32 {
            let rec = format!(
                "record number {i} with some padding {}",
                "x".repeat(i as usize % 50)
            );
            rids.push((h.insert(rec.as_bytes()).unwrap(), rec));
        }
        for (rid, rec) in &rids {
            assert_eq!(h.get(*rid).unwrap(), rec.as_bytes());
        }
        assert!(h.data_pages() > 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn update_in_place_and_relocation() {
        let (h, path) = heap("upd");
        let rid = h.insert(b"small").unwrap();
        let same = h.update(rid, b"tiny").unwrap();
        assert_eq!(same, rid);
        assert_eq!(h.get(rid).unwrap(), b"tiny");
        // Fill the page so a grow must relocate.
        let filler = vec![9u8; 2000];
        for _ in 0..3 {
            h.insert(&filler).unwrap();
        }
        let big = vec![1u8; 4000];
        let moved = h.update(rid, &big).unwrap();
        assert_eq!(h.get(moved).unwrap(), big);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn delete_frees_space_for_reuse() {
        let (h, path) = heap("del");
        let rec = vec![5u8; 1000];
        let mut rids = Vec::new();
        for _ in 0..20 {
            rids.push(h.insert(&rec).unwrap());
        }
        let pages_before = h.data_pages();
        for rid in &rids {
            h.delete(*rid).unwrap();
        }
        for _ in 0..20 {
            h.insert(&rec).unwrap();
        }
        // Space was reused: no (or barely any) new pages.
        assert!(h.data_pages() <= pages_before + 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn scan_visits_all_live() {
        let (h, path) = heap("scan");
        let mut expect = std::collections::HashSet::new();
        for i in 0..100u32 {
            let rec = i.to_le_bytes().to_vec();
            let rid = h.insert(&rec).unwrap();
            if i % 3 == 0 {
                h.delete(rid).unwrap();
            } else {
                expect.insert(i);
            }
        }
        let mut seen = std::collections::HashSet::new();
        h.scan(|_rid, rec| {
            seen.insert(u32::from_le_bytes(rec.try_into().unwrap()));
            Ok(true)
        })
        .unwrap();
        assert_eq!(seen, expect);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn scan_early_stop() {
        let (h, path) = heap("stop");
        for i in 0..50u32 {
            h.insert(&i.to_le_bytes()).unwrap();
        }
        let mut n = 0;
        h.scan(|_, _| {
            n += 1;
            Ok(n < 10)
        })
        .unwrap();
        assert_eq!(n, 10);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn persists_across_reopen() {
        let path = tmpfile("persist");
        let rid;
        {
            let dm = Arc::new(DiskManager::open(&path).unwrap());
            let pool = BufferPool::new(8);
            let file = pool.register_file(dm);
            let h = HeapFile::create(pool.clone(), file).unwrap();
            rid = h.insert(b"durable record").unwrap();
            pool.flush_and_sync().unwrap();
        }
        {
            let dm = Arc::new(DiskManager::open(&path).unwrap());
            let pool = BufferPool::new(8);
            let file = pool.register_file(dm);
            let h = HeapFile::open(pool, file).unwrap();
            assert_eq!(h.get(rid).unwrap(), b"durable record");
            assert_eq!(h.vacuum_scan().unwrap(), 1);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn exists_checks() {
        let (h, path) = heap("exists");
        let rid = h.insert(b"x").unwrap();
        assert!(h.exists(rid).unwrap());
        h.delete(rid).unwrap();
        assert!(!h.exists(rid).unwrap());
        assert!(!h.exists(RecordId::INVALID).unwrap());
        assert!(!h.exists(RecordId::new(PageId(999), SlotId(0))).unwrap());
        let _ = std::fs::remove_file(&path);
    }
}
