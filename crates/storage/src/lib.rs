//! # tcom-storage
//!
//! The paged storage substrate of the tcom engine: a disk manager with
//! checksummed 8 KiB pages ([`disk`]), slotted data pages ([`slotted`]), a
//! shared clock-replacement buffer pool ([`buffer`]), heap files ([`heap`])
//! and a disk-resident B⁺-tree ([`btree`]) used for atom directories, value
//! indexes and the time index.
//!
//! This crate substitutes for the 1992 PRIMA storage system the paper ran
//! on: it preserves the behaviours the evaluation depends on — page-granular
//! I/O, buffer locality, and access-path cost structure.

#![warn(missing_docs)]

pub mod btree;
pub mod buffer;
pub mod disk;
pub mod heap;
pub mod keys;
pub mod page;
pub mod slotted;
pub mod vfs;

pub use buffer::{BufferPool, BufferStats, FileId, PageMut, PageRef};
pub use disk::{DiskIoStats, DiskManager};
pub use heap::HeapFile;
pub use page::{Page, PageKind, PAGE_SIZE};
pub use slotted::{SlottedPage, SlottedRef, MAX_RECORD};
pub use vfs::{Fault, FaultSchedule, FaultVfs, StdVfs, Vfs, VfsFile};
