//! Order-preserving key encodings for the B⁺-tree.
//!
//! The tree stores fixed-width composite keys ([`BKey`]: two `u64` words).
//! Index layers encode typed values into the high word so that `u64`
//! comparison agrees with the value order, and disambiguate duplicates via
//! the low word (usually the packed [`tcom_kernel::RecordId`] or atom
//! number). Encodings:
//!
//! * integers: offset-binary (`x ⊕ 2⁶³`),
//! * floats: the IEEE-754 total-order trick (flip sign bit for positives,
//!   flip all bits for negatives),
//! * text: the first 8 bytes big-endian (a *prefix* encoding — equal
//!   prefixes require a residual comparison, which index scans perform
//!   against the heap record),
//! * time points: identity.

use tcom_kernel::{TimePoint, Value};

/// Fixed-width composite B⁺-tree key: compared as `(hi, lo)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct BKey {
    /// Primary dimension (encoded value / time / atom number).
    pub hi: u64,
    /// Tie-breaker dimension (record id / atom number / zero).
    pub lo: u64,
}

impl BKey {
    /// Composes a key.
    pub fn new(hi: u64, lo: u64) -> BKey {
        BKey { hi, lo }
    }

    /// Smallest key with the given high word.
    pub fn min_for(hi: u64) -> BKey {
        BKey { hi, lo: 0 }
    }

    /// Largest key with the given high word.
    pub fn max_for(hi: u64) -> BKey {
        BKey { hi, lo: u64::MAX }
    }

    /// The smallest possible key.
    pub const MIN: BKey = BKey { hi: 0, lo: 0 };
    /// The largest possible key.
    pub const MAX: BKey = BKey {
        hi: u64::MAX,
        lo: u64::MAX,
    };
}

/// Order-preserving encoding of an `i64`.
pub fn encode_int(v: i64) -> u64 {
    (v as u64) ^ (1 << 63)
}

/// Inverse of [`encode_int`].
pub fn decode_int(v: u64) -> i64 {
    (v ^ (1 << 63)) as i64
}

/// Order-preserving encoding of an `f64` (total order; NaNs sort high).
pub fn encode_float(v: f64) -> u64 {
    let bits = v.to_bits();
    if bits & (1 << 63) == 0 {
        bits | (1 << 63)
    } else {
        !bits
    }
}

/// Order-preserving 8-byte prefix of a string (big-endian, zero-padded).
pub fn encode_text_prefix(s: &str) -> u64 {
    let b = s.as_bytes();
    let mut a = [0u8; 8];
    let n = b.len().min(8);
    a[..n].copy_from_slice(&b[..n]);
    u64::from_be_bytes(a)
}

/// Identity encoding of a time point.
pub fn encode_time(t: TimePoint) -> u64 {
    t.0
}

/// Encodes an indexable value into the key's high word. Returns `None` for
/// value kinds no index is defined over (`Null`, `Bytes`, references).
///
/// Note the encodings of different types occupy the same `u64` space; an
/// index is always over a single typed attribute, so cross-type collisions
/// cannot occur within one index.
pub fn encode_value(v: &Value) -> Option<u64> {
    match v {
        Value::Bool(b) => Some(*b as u64),
        Value::Int(i) => Some(encode_int(*i)),
        Value::Float(f) => Some(encode_float(*f)),
        Value::Text(s) => Some(encode_text_prefix(s)),
        _ => None,
    }
}

/// Whether the text encoding is exact (strings ≤ 8 bytes) or a prefix that
/// needs residual comparison.
pub fn text_encoding_exact(s: &str) -> bool {
    s.len() <= 8
}

// ---------------------------------------------------------------------------
// Composite transaction-time keys (the per-store interval index)
//
// The transaction-time interval index stores every version under a key whose
// high word combines a partition bit with the version's `tt.start`:
//
//   hi = partition | tt_start        lo = caller-chosen discriminator
//
// The top bit separates the small *open* partition (tt-open records — the
// current database state) from the *closed* partition (everything whose
// transaction time has ended). Transaction times are commit ticks counted
// from zero, so they never reach bit 63 and the partitions cannot collide.
// Within a partition keys sort by `tt_start`, which makes "every version
// that had started by time t" a single range scan.
// ---------------------------------------------------------------------------

/// Partition bit of composite transaction-time keys: set for tt-open
/// (current) entries, clear for closed ones.
pub const TT_OPEN_BIT: u64 = 1 << 63;

/// Key of a transaction-time index entry: `(partition | tt_start, lo)`.
///
/// `tt_start` must stay below [`TT_OPEN_BIT`] (commit ticks always do).
pub fn encode_tt_key(open: bool, tt_start: TimePoint, lo: u64) -> BKey {
    debug_assert!(
        tt_start.0 < TT_OPEN_BIT,
        "transaction time overflows the partition bit"
    );
    let part = if open { TT_OPEN_BIT } else { 0 };
    BKey::new(part | tt_start.0, lo)
}

/// The `tt_start` a composite key's high word encodes.
pub fn decode_tt_start(hi: u64) -> TimePoint {
    TimePoint(hi & !TT_OPEN_BIT)
}

/// Half-open scan bounds covering every key of the chosen partition with
/// `tt_start <= through` (pass `TimePoint::FOREVER` for the whole
/// partition). Feed directly to `BTree::scan_range`.
pub fn tt_scan_bounds(open: bool, through: TimePoint) -> (BKey, BKey) {
    let part = if open { TT_OPEN_BIT } else { 0 };
    let lo = BKey::min_for(part);
    // Exclusive upper: first hi word past the range. Saturate at the
    // partition's end; the open partition tops out at BKey::MAX (that exact
    // key is never stored — no record starts at tt 2⁶³−1 with lo=u64::MAX).
    let cap = through.0.saturating_add(1).min(TT_OPEN_BIT);
    let hi = if cap == TT_OPEN_BIT {
        if open {
            BKey::MAX
        } else {
            BKey::min_for(TT_OPEN_BIT)
        }
    } else {
        BKey::min_for(part | cap)
    };
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_encoding_preserves_order() {
        let vals = [i64::MIN, -1_000_000, -1, 0, 1, 42, i64::MAX];
        for w in vals.windows(2) {
            assert!(encode_int(w[0]) < encode_int(w[1]), "{} vs {}", w[0], w[1]);
        }
        for v in vals {
            assert_eq!(decode_int(encode_int(v)), v);
        }
    }

    #[test]
    fn float_encoding_preserves_order() {
        let vals = [
            f64::NEG_INFINITY,
            -1e300,
            -1.5,
            -f64::MIN_POSITIVE,
            -0.0,
            0.0,
            f64::MIN_POSITIVE,
            1.5,
            1e300,
            f64::INFINITY,
        ];
        for w in vals.windows(2) {
            assert!(
                encode_float(w[0]) <= encode_float(w[1]),
                "{} vs {}",
                w[0],
                w[1]
            );
        }
        // strict for distinct non-zero pairs
        assert!(encode_float(-1.5) < encode_float(1.5));
        // NaN sorts at the top
        assert!(encode_float(f64::NAN) > encode_float(f64::INFINITY));
    }

    #[test]
    fn text_prefix_preserves_order() {
        let vals = ["", "a", "ab", "abc", "abd", "b", "zzzzzzzzz"];
        for w in vals.windows(2) {
            assert!(
                encode_text_prefix(w[0]) <= encode_text_prefix(w[1]),
                "{:?} vs {:?}",
                w[0],
                w[1]
            );
        }
        assert!(text_encoding_exact("12345678"));
        assert!(!text_encoding_exact("123456789"));
        // Shared 8-byte prefix collides, as documented.
        assert_eq!(
            encode_text_prefix("abcdefghX"),
            encode_text_prefix("abcdefghY")
        );
    }

    #[test]
    fn bkey_ordering() {
        assert!(BKey::new(1, u64::MAX) < BKey::new(2, 0));
        assert!(BKey::new(2, 1) < BKey::new(2, 2));
        assert!(BKey::MIN < BKey::MAX);
        assert_eq!(BKey::min_for(5).hi, 5);
        assert_eq!(BKey::max_for(5).lo, u64::MAX);
    }

    #[test]
    fn tt_keys_partition_and_order() {
        let open = encode_tt_key(true, TimePoint(5), 1);
        let closed = encode_tt_key(false, TimePoint(900), 1);
        // Every open key sorts after every closed key, whatever the times.
        assert!(closed < open);
        assert_eq!(decode_tt_start(open.hi), TimePoint(5));
        assert_eq!(decode_tt_start(closed.hi), TimePoint(900));
        // Within a partition, keys order by (tt_start, lo).
        assert!(encode_tt_key(false, TimePoint(3), 9) < encode_tt_key(false, TimePoint(4), 0));
        assert!(encode_tt_key(true, TimePoint(3), 1) < encode_tt_key(true, TimePoint(3), 2));
    }

    #[test]
    fn tt_scan_bounds_cover_exactly_started_by() {
        let in_bounds = |open: bool, through: u64, t: u64, lo: u64| {
            let (b_lo, b_hi) = tt_scan_bounds(open, TimePoint(through));
            let k = encode_tt_key(open, TimePoint(t), lo);
            b_lo <= k && k < b_hi
        };
        assert!(in_bounds(false, 10, 10, u64::MAX)); // inclusive `through`
        assert!(in_bounds(false, 10, 0, 0));
        assert!(!in_bounds(false, 10, 11, 0));
        assert!(in_bounds(true, 10, 10, 7));
        assert!(!in_bounds(true, 10, 11, 7));
        // FOREVER covers each whole partition without leaking across.
        assert!(in_bounds(false, u64::MAX, 1 << 40, 3));
        assert!(in_bounds(true, u64::MAX, 1 << 40, 3));
        let (lo, hi) = tt_scan_bounds(false, TimePoint::FOREVER);
        assert!(encode_tt_key(true, TimePoint(0), 0) >= hi && lo == BKey::MIN);
        let (lo, _) = tt_scan_bounds(true, TimePoint::FOREVER);
        assert!(encode_tt_key(false, TimePoint(u64::MAX >> 1), u64::MAX) < lo);
    }

    #[test]
    fn encode_value_dispatch() {
        assert_eq!(encode_value(&Value::Bool(false)), Some(0));
        assert_eq!(encode_value(&Value::Bool(true)), Some(1));
        assert_eq!(encode_value(&Value::Int(7)), Some(encode_int(7)));
        assert_eq!(encode_value(&Value::Float(1.0)), Some(encode_float(1.0)));
        assert_eq!(
            encode_value(&Value::Text("hi".into())),
            Some(encode_text_prefix("hi"))
        );
        assert_eq!(encode_value(&Value::Null), None);
        assert_eq!(encode_value(&Value::Bytes(vec![1])), None);
    }
}
