//! The disk manager: page-granular file I/O with checksums.
//!
//! One [`DiskManager`] owns one file. Pages are addressed by [`PageId`]
//! (page 0 starts at byte 0). Writes seal the page checksum; reads verify
//! it. Allocation is bump-only at the file level — page reuse is handled by
//! the layers above (heap free-space map, B⁺-tree free list), which keeps
//! the disk manager trivially correct.

use crate::page::{Page, PAGE_SIZE};
use crate::vfs::{StdVfs, Vfs, VfsFile};
use parking_lot::Mutex;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use tcom_kernel::{Error, PageId, Result};

/// Page-granular file manager.
pub struct DiskManager {
    file: Arc<dyn VfsFile>,
    path: PathBuf,
    page_count: AtomicU32,
    /// Serializes allocations: page-count bump and file extension must be
    /// one atomic step or racing `set_len`s could shrink the file.
    alloc: Mutex<()>,
    reads: AtomicU64,
    writes: AtomicU64,
    syncs: AtomicU64,
}

/// Cumulative physical I/O of one [`DiskManager`] since open. Pages are
/// fixed-size, so byte counts are derived (`reads * PAGE_SIZE`); keeping
/// them here makes the registry exposition self-describing.
#[derive(Clone, Copy, Debug, Default)]
pub struct DiskIoStats {
    /// Pages read.
    pub reads: u64,
    /// Pages written.
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// `sync()` calls forced to stable storage.
    pub syncs: u64,
}

impl DiskManager {
    /// Opens (or creates) the file at `path` on the real file system.
    pub fn open(path: impl AsRef<Path>) -> Result<DiskManager> {
        DiskManager::open_with(&StdVfs, path)
    }

    /// Opens (or creates) the file at `path` through `vfs`.
    ///
    /// The file length must be a whole number of pages; anything else is a
    /// torn final page from a crash mid-extend and is truncated away,
    /// since an unsealed page was never acknowledged.
    pub fn open_with(vfs: &dyn Vfs, path: impl AsRef<Path>) -> Result<DiskManager> {
        let path = path.as_ref().to_owned();
        let file = vfs.open(&path)?;
        let len = file.len()?;
        let rem = len % PAGE_SIZE as u64;
        if rem != 0 {
            // A crash while extending the file can leave a partial page that
            // no committed state references; drop it.
            file.set_len(len - rem)?;
        }
        let page_count = (file.len()? / PAGE_SIZE as u64) as u32;
        Ok(DiskManager {
            file,
            path,
            page_count: AtomicU32::new(page_count),
            alloc: Mutex::new(()),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
        })
    }

    /// File system path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of allocated pages.
    pub fn page_count(&self) -> u32 {
        self.page_count.load(Ordering::Acquire)
    }

    /// Allocates a fresh page at the end of the file and returns its id.
    /// The page contents on disk are undefined until first written.
    pub fn allocate_page(&self) -> Result<PageId> {
        let _a = self.alloc.lock();
        let id = self.page_count.fetch_add(1, Ordering::AcqRel);
        self.file.set_len((id as u64 + 1) * PAGE_SIZE as u64)?;
        Ok(PageId(id))
    }

    /// Reads and verifies a page.
    pub fn read_page(&self, id: PageId) -> Result<Page> {
        let mut page = Page::default();
        self.read_page_into(id, &mut page)?;
        Ok(page)
    }

    /// Reads and verifies a page into an existing buffer, avoiding the
    /// 8 KiB allocation — the buffer pool's miss path reloads straight
    /// into the victim frame. On error the buffer contents are undefined.
    pub fn read_page_into(&self, id: PageId, page: &mut Page) -> Result<()> {
        if id.0 >= self.page_count() {
            return Err(Error::corruption(format!(
                "read of unallocated page {id:?} (file has {} pages)",
                self.page_count()
            )));
        }
        let buf = page.bytes_mut();
        self.file
            .read_at(buf.as_mut_slice(), id.0 as u64 * PAGE_SIZE as u64)?;
        self.reads.fetch_add(1, Ordering::Relaxed);
        // An all-zero block is a "ghost" page: the file was extended but the
        // page image was never written before a crash (no sealed page can be
        // all zeros — the checksum of a zero body is nonzero). Surface it as
        // a Free page; owners treat Free pages as absent.
        if buf.iter().all(|&b| b == 0) {
            return Ok(());
        }
        page.verify().map_err(|e| {
            Error::corruption(format!("{e} (page {id:?} of {})", self.path.display()))
        })?;
        Ok(())
    }

    /// Seals and writes a page in place.
    pub fn write_page(&self, id: PageId, page: &mut Page) -> Result<()> {
        if id.0 >= self.page_count() {
            return Err(Error::internal(format!("write of unallocated page {id:?}")));
        }
        page.seal();
        self.file
            .write_at(page.bytes().as_slice(), id.0 as u64 * PAGE_SIZE as u64)?;
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Forces all written pages to stable storage.
    pub fn sync(&self) -> Result<()> {
        self.file.sync()?;
        self.syncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// (physical reads, physical writes) since open — the currency of the
    /// benchmark harness.
    pub fn io_counts(&self) -> (u64, u64) {
        (
            self.reads.load(Ordering::Relaxed),
            self.writes.load(Ordering::Relaxed),
        )
    }

    /// Full physical-I/O snapshot since open (lock-free).
    pub fn io_stats(&self) -> DiskIoStats {
        let reads = self.reads.load(Ordering::Relaxed);
        let writes = self.writes.load(Ordering::Relaxed);
        DiskIoStats {
            reads,
            writes,
            bytes_read: reads * PAGE_SIZE as u64,
            bytes_written: writes * PAGE_SIZE as u64,
            syncs: self.syncs.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageKind;
    use std::fs::OpenOptions;
    use std::io::{Read, Seek, SeekFrom, Write};

    fn tmpfile(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tcom-disk-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_file(&dir);
        dir
    }

    #[test]
    fn allocate_write_read_roundtrip() {
        let path = tmpfile("rw");
        let dm = DiskManager::open(&path).unwrap();
        assert_eq!(dm.page_count(), 0);
        let id = dm.allocate_page().unwrap();
        assert_eq!(id, PageId(0));
        let mut p = Page::new(PageKind::Slotted);
        p.write_u64(64, 777);
        dm.write_page(id, &mut p).unwrap();
        let back = dm.read_page(id).unwrap();
        assert_eq!(back.read_u64(64), 777);
        assert_eq!(back.kind().unwrap(), PageKind::Slotted);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn persists_across_reopen() {
        let path = tmpfile("reopen");
        {
            let dm = DiskManager::open(&path).unwrap();
            let id = dm.allocate_page().unwrap();
            let mut p = Page::new(PageKind::Meta);
            p.write_u32(32, 42);
            dm.write_page(id, &mut p).unwrap();
            dm.sync().unwrap();
        }
        let dm = DiskManager::open(&path).unwrap();
        assert_eq!(dm.page_count(), 1);
        assert_eq!(dm.read_page(PageId(0)).unwrap().read_u32(32), 42);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn read_out_of_range_fails() {
        let path = tmpfile("oob");
        let dm = DiskManager::open(&path).unwrap();
        assert!(dm.read_page(PageId(3)).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn detects_on_disk_corruption() {
        let path = tmpfile("corrupt");
        {
            let dm = DiskManager::open(&path).unwrap();
            let id = dm.allocate_page().unwrap();
            let mut p = Page::new(PageKind::Slotted);
            dm.write_page(id, &mut p).unwrap();
            dm.sync().unwrap();
        }
        // Flip a byte in the page body directly in the file.
        {
            let mut f = OpenOptions::new()
                .read(true)
                .write(true)
                .open(&path)
                .unwrap();
            f.seek(SeekFrom::Start(100)).unwrap();
            let mut b = [0u8; 1];
            f.read_exact(&mut b).unwrap();
            f.seek(SeekFrom::Start(100)).unwrap();
            f.write_all(&[b[0] ^ 0xFF]).unwrap();
        }
        let dm = DiskManager::open(&path).unwrap();
        assert!(matches!(dm.read_page(PageId(0)), Err(Error::Corruption(_))));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncates_torn_tail() {
        let path = tmpfile("torn");
        {
            let dm = DiskManager::open(&path).unwrap();
            let id = dm.allocate_page().unwrap();
            let mut p = Page::new(PageKind::Slotted);
            dm.write_page(id, &mut p).unwrap();
        }
        // Append half a page of garbage, as a crash mid-extend would.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&vec![0xAB; PAGE_SIZE / 2]).unwrap();
        }
        let dm = DiskManager::open(&path).unwrap();
        assert_eq!(dm.page_count(), 1);
        dm.read_page(PageId(0)).unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_boundary_cases() {
        // Tail remainders of 0 (exact multiple — nothing to trim), 1 byte,
        // and PAGE_SIZE - 1 bytes must all reopen to exactly two pages.
        for extra in [0usize, 1, PAGE_SIZE - 1] {
            let path = tmpfile(&format!("torn-edge-{extra}"));
            {
                let dm = DiskManager::open(&path).unwrap();
                for fill in [1u8, 2] {
                    let id = dm.allocate_page().unwrap();
                    let mut p = Page::new(PageKind::Slotted);
                    p.body_mut()[0] = fill;
                    dm.write_page(id, &mut p).unwrap();
                }
                dm.sync().unwrap();
            }
            if extra > 0 {
                let mut f = OpenOptions::new().append(true).open(&path).unwrap();
                f.write_all(&vec![0xEE; extra]).unwrap();
            }
            let dm = DiskManager::open(&path).unwrap();
            assert_eq!(dm.page_count(), 2, "tail of {extra} bytes");
            assert_eq!(dm.read_page(PageId(0)).unwrap().body()[0], 1);
            assert_eq!(dm.read_page(PageId(1)).unwrap().body()[0], 2);
            assert_eq!(
                std::fs::metadata(&path).unwrap().len(),
                2 * PAGE_SIZE as u64,
                "torn tail of {extra} bytes must be truncated away"
            );
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn partial_final_page_slot_is_reusable_after_reopen() {
        // Crash mid-extend: page 1's image only partially reached the file.
        // On reopen the torn page is dropped and the very next allocation
        // hands the same slot out again, which must then read back clean.
        let path = tmpfile("torn-reuse");
        {
            let dm = DiskManager::open(&path).unwrap();
            let id = dm.allocate_page().unwrap();
            let mut p = Page::new(PageKind::Slotted);
            dm.write_page(id, &mut p).unwrap();
            dm.sync().unwrap();
        }
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            let mut torn = Page::new(PageKind::Slotted);
            torn.body_mut()[0] = 0x77;
            f.write_all(&torn.bytes()[..PAGE_SIZE / 3]).unwrap();
        }
        let dm = DiskManager::open(&path).unwrap();
        assert_eq!(dm.page_count(), 1);
        assert!(
            dm.read_page(PageId(1)).is_err(),
            "torn page is out of range"
        );
        let id = dm.allocate_page().unwrap();
        assert_eq!(id, PageId(1), "the torn slot is handed out again");
        let mut p = Page::new(PageKind::Slotted);
        p.body_mut()[0] = 9;
        dm.write_page(id, &mut p).unwrap();
        drop(dm);
        let dm = DiskManager::open(&path).unwrap();
        assert_eq!(dm.page_count(), 2);
        assert_eq!(dm.read_page(PageId(1)).unwrap().body()[0], 9);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn io_counters_advance() {
        let path = tmpfile("counts");
        let dm = DiskManager::open(&path).unwrap();
        let id = dm.allocate_page().unwrap();
        let mut p = Page::new(PageKind::Slotted);
        dm.write_page(id, &mut p).unwrap();
        dm.read_page(id).unwrap();
        dm.read_page(id).unwrap();
        assert_eq!(dm.io_counts(), (2, 1));
        let _ = std::fs::remove_file(&path);
    }
}
