//! Slotted-page layout for variable-length records.
//!
//! Layout (offsets are absolute within the page):
//!
//! ```text
//! 0..8    common page header (see `page`)
//! 8       u16 slot_count         number of slot entries ever allocated
//! 10      u16 free_start         first byte of the free gap (grows up)
//! 12      u16 free_end           one past the free gap (cells grow down)
//! 14      u16 live_bytes         sum of live cell lengths (for vacuum decisions)
//! 16..    slot array             4 bytes per slot: u16 offset, u16 len
//! ...     free gap
//! ...     cells (records), allocated from PAGE_SIZE downwards
//! ```
//!
//! A slot with `offset == DEAD` is a tombstone; its id can be reused by a
//! later insert. Record ids therefore stay stable across intra-page
//! compaction (compaction moves cells, not slots).

use crate::page::{Page, PageKind, PAGE_HEADER_LEN, PAGE_SIZE};
use tcom_kernel::{Error, Result, SlotId};

const OFF_SLOT_COUNT: usize = PAGE_HEADER_LEN;
const OFF_FREE_START: usize = PAGE_HEADER_LEN + 2;
const OFF_FREE_END: usize = PAGE_HEADER_LEN + 4;
const OFF_LIVE_BYTES: usize = PAGE_HEADER_LEN + 6;
const SLOTS_BASE: usize = PAGE_HEADER_LEN + 8;
const SLOT_ENTRY: usize = 4;
const DEAD: u16 = u16::MAX;

/// Largest record that fits on an empty page.
pub const MAX_RECORD: usize = PAGE_SIZE - SLOTS_BASE - SLOT_ENTRY;

/// Typed view over a [`Page`] using the slotted layout.
///
/// The view borrows the page mutably; all layout invariants are kept local
/// to this module.
pub struct SlottedPage<'a> {
    page: &'a mut Page,
}

impl<'a> SlottedPage<'a> {
    /// Formats `page` as an empty slotted page.
    pub fn init(page: &'a mut Page) -> SlottedPage<'a> {
        page.set_kind(PageKind::Slotted);
        page.write_u16(OFF_SLOT_COUNT, 0);
        page.write_u16(OFF_FREE_START, SLOTS_BASE as u16);
        page.write_u16(OFF_FREE_END, PAGE_SIZE as u16);
        page.write_u16(OFF_LIVE_BYTES, 0);
        SlottedPage { page }
    }

    /// Wraps an existing slotted page.
    pub fn attach(page: &'a mut Page) -> Result<SlottedPage<'a>> {
        match page.kind()? {
            PageKind::Slotted => Ok(SlottedPage { page }),
            k => Err(Error::corruption(format!(
                "expected slotted page, found {k:?}"
            ))),
        }
    }

    fn slot_count(&self) -> u16 {
        self.page.read_u16(OFF_SLOT_COUNT)
    }

    fn free_start(&self) -> usize {
        self.page.read_u16(OFF_FREE_START) as usize
    }

    fn free_end(&self) -> usize {
        self.page.read_u16(OFF_FREE_END) as usize
    }

    fn live_bytes(&self) -> usize {
        self.page.read_u16(OFF_LIVE_BYTES) as usize
    }

    fn slot_entry(&self, slot: u16) -> (u16, u16) {
        let base = SLOTS_BASE + slot as usize * SLOT_ENTRY;
        (self.page.read_u16(base), self.page.read_u16(base + 2))
    }

    fn set_slot_entry(&mut self, slot: u16, off: u16, len: u16) {
        let base = SLOTS_BASE + slot as usize * SLOT_ENTRY;
        self.page.write_u16(base, off);
        self.page.write_u16(base + 2, len);
    }

    /// Contiguous free bytes between the slot array and the cell area.
    pub fn contiguous_free(&self) -> usize {
        self.free_end().saturating_sub(self.free_start())
    }

    /// Free bytes reclaimable by compaction (dead cells + gap).
    pub fn total_free(&self) -> usize {
        let slots = self.slot_count() as usize * SLOT_ENTRY;
        PAGE_SIZE - SLOTS_BASE - slots - self.live_bytes()
    }

    /// Whether a record of `len` bytes can be stored (possibly after
    /// compaction), accounting for a potentially new slot entry.
    pub fn can_fit(&self, len: usize) -> bool {
        let need_new_slot = !self.has_dead_slot();
        let overhead = if need_new_slot { SLOT_ENTRY } else { 0 };
        len + overhead <= self.total_free()
    }

    fn has_dead_slot(&self) -> bool {
        (0..self.slot_count()).any(|s| self.slot_entry(s).0 == DEAD)
    }

    /// Number of live records.
    pub fn live_count(&self) -> usize {
        (0..self.slot_count())
            .filter(|&s| self.slot_entry(s).0 != DEAD)
            .count()
    }

    /// Iterates live `(slot, record bytes)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SlotId, &[u8])> + '_ {
        (0..self.slot_count()).filter_map(move |s| {
            let (off, len) = self.slot_entry(s);
            if off == DEAD {
                None
            } else {
                Some((
                    SlotId(s),
                    &self.page.bytes()[off as usize..off as usize + len as usize],
                ))
            }
        })
    }

    /// Inserts a record, compacting first if needed. Fails with
    /// [`Error::RecordTooLarge`] when the record can never fit on a page and
    /// with `Ok(None)` when this particular page is too full.
    pub fn insert(&mut self, rec: &[u8]) -> Result<Option<SlotId>> {
        if rec.len() > MAX_RECORD {
            return Err(Error::RecordTooLarge(rec.len()));
        }
        if !self.can_fit(rec.len()) {
            return Ok(None);
        }
        // Pick a slot: reuse the first dead one, else append. Appending
        // needs SLOT_ENTRY bytes of contiguous gap — compact first if the
        // gap is fragmented away, or the slot array would overrun cells.
        let slot = match (0..self.slot_count()).find(|&s| self.slot_entry(s).0 == DEAD) {
            Some(s) => s,
            None => {
                if self.contiguous_free() < SLOT_ENTRY {
                    self.compact();
                }
                debug_assert!(self.contiguous_free() >= SLOT_ENTRY);
                let s = self.slot_count();
                self.page.write_u16(OFF_SLOT_COUNT, s + 1);
                // Appending a slot entry consumes free_start space.
                self.page
                    .write_u16(OFF_FREE_START, (self.free_start() + SLOT_ENTRY) as u16);
                self.set_slot_entry(s, DEAD, 0);
                s
            }
        };
        if self.contiguous_free() < rec.len() {
            self.compact();
        }
        debug_assert!(self.contiguous_free() >= rec.len());
        let off = self.free_end() - rec.len();
        self.page.bytes_mut()[off..off + rec.len()].copy_from_slice(rec);
        self.page.write_u16(OFF_FREE_END, off as u16);
        self.set_slot_entry(slot, off as u16, rec.len() as u16);
        self.page
            .write_u16(OFF_LIVE_BYTES, (self.live_bytes() + rec.len()) as u16);
        Ok(Some(SlotId(slot)))
    }

    /// Returns the record stored in `slot`.
    pub fn get(&self, slot: SlotId) -> Result<&[u8]> {
        if slot.0 >= self.slot_count() {
            return Err(Error::corruption(format!("slot {} out of range", slot.0)));
        }
        let (off, len) = self.slot_entry(slot.0);
        if off == DEAD {
            return Err(Error::corruption(format!("slot {} is dead", slot.0)));
        }
        Ok(&self.page.bytes()[off as usize..off as usize + len as usize])
    }

    /// True iff `slot` holds a live record.
    pub fn is_live(&self, slot: SlotId) -> bool {
        slot.0 < self.slot_count() && self.slot_entry(slot.0).0 != DEAD
    }

    /// Deletes the record in `slot` (tombstones the slot; cell space is
    /// reclaimed lazily by compaction).
    pub fn delete(&mut self, slot: SlotId) -> Result<()> {
        let _ = self.get(slot)?;
        let (_, len) = self.slot_entry(slot.0);
        self.set_slot_entry(slot.0, DEAD, 0);
        self.page
            .write_u16(OFF_LIVE_BYTES, (self.live_bytes() - len as usize) as u16);
        Ok(())
    }

    /// Replaces the record in `slot`. Returns `Ok(false)` when the new
    /// record does not fit on this page even after compaction (the caller
    /// must then relocate the record — record ids are not stable across
    /// pages, so the relocation is the owner's policy decision).
    pub fn update(&mut self, slot: SlotId, rec: &[u8]) -> Result<bool> {
        let _ = self.get(slot)?;
        if rec.len() > MAX_RECORD {
            return Err(Error::RecordTooLarge(rec.len()));
        }
        let (off, old_len) = self.slot_entry(slot.0);
        if rec.len() <= old_len as usize {
            // In-place shrink/replace.
            let off = off as usize;
            self.page.bytes_mut()[off..off + rec.len()].copy_from_slice(rec);
            self.set_slot_entry(slot.0, off as u16, rec.len() as u16);
            self.page.write_u16(
                OFF_LIVE_BYTES,
                (self.live_bytes() - old_len as usize + rec.len()) as u16,
            );
            return Ok(true);
        }
        // Grow: free the old cell, then insert into the same slot id.
        let live_after_delete = self.live_bytes() - old_len as usize;
        if rec.len() + live_after_delete + self.slot_count() as usize * SLOT_ENTRY
            > PAGE_SIZE - SLOTS_BASE
        {
            return Ok(false);
        }
        self.set_slot_entry(slot.0, DEAD, 0);
        self.page
            .write_u16(OFF_LIVE_BYTES, live_after_delete as u16);
        if self.contiguous_free() < rec.len() {
            self.compact();
        }
        let off = self.free_end() - rec.len();
        self.page.bytes_mut()[off..off + rec.len()].copy_from_slice(rec);
        self.page.write_u16(OFF_FREE_END, off as u16);
        self.set_slot_entry(slot.0, off as u16, rec.len() as u16);
        self.page
            .write_u16(OFF_LIVE_BYTES, (self.live_bytes() + rec.len()) as u16);
        Ok(true)
    }

    /// Slides all live cells to the end of the page, squeezing out dead
    /// space. Slot ids are untouched.
    pub fn compact(&mut self) {
        let mut live: Vec<(u16, u16, u16)> = (0..self.slot_count())
            .filter_map(|s| {
                let (off, len) = self.slot_entry(s);
                (off != DEAD).then_some((s, off, len))
            })
            .collect();
        // Move highest-offset cells first so cells never overwrite each
        // other while sliding toward the page end.
        live.sort_by_key(|e| std::cmp::Reverse(e.1));
        let mut write_end = PAGE_SIZE;
        for (slot, off, len) in live {
            let new_off = write_end - len as usize;
            self.page
                .bytes_mut()
                .copy_within(off as usize..off as usize + len as usize, new_off);
            self.set_slot_entry(slot, new_off as u16, len);
            write_end = new_off;
        }
        self.page.write_u16(OFF_FREE_END, write_end as u16);
    }
}

/// Read-only view over a slotted page (usable under a shared page latch).
pub struct SlottedRef<'a> {
    page: &'a Page,
}

impl<'a> SlottedRef<'a> {
    /// Wraps an existing slotted page for reading.
    pub fn attach(page: &'a Page) -> Result<SlottedRef<'a>> {
        match page.kind()? {
            PageKind::Slotted => Ok(SlottedRef { page }),
            k => Err(Error::corruption(format!(
                "expected slotted page, found {k:?}"
            ))),
        }
    }

    fn slot_count(&self) -> u16 {
        self.page.read_u16(OFF_SLOT_COUNT)
    }

    fn slot_entry(&self, slot: u16) -> (u16, u16) {
        let base = SLOTS_BASE + slot as usize * SLOT_ENTRY;
        (self.page.read_u16(base), self.page.read_u16(base + 2))
    }

    /// Returns the record stored in `slot`.
    pub fn get(&self, slot: SlotId) -> Result<&'a [u8]> {
        if slot.0 >= self.slot_count() {
            return Err(Error::corruption(format!("slot {} out of range", slot.0)));
        }
        let (off, len) = self.slot_entry(slot.0);
        if off == DEAD {
            return Err(Error::corruption(format!("slot {} is dead", slot.0)));
        }
        Ok(&self.page.bytes()[off as usize..off as usize + len as usize])
    }

    /// True iff `slot` holds a live record.
    pub fn is_live(&self, slot: SlotId) -> bool {
        slot.0 < self.slot_count() && self.slot_entry(slot.0).0 != DEAD
    }

    /// Number of live records.
    pub fn live_count(&self) -> usize {
        (0..self.slot_count())
            .filter(|&s| self.slot_entry(s).0 != DEAD)
            .count()
    }

    /// Free bytes reclaimable by compaction (dead cells + gap).
    pub fn total_free(&self) -> usize {
        let slots = self.slot_count() as usize * SLOT_ENTRY;
        PAGE_SIZE - SLOTS_BASE - slots - self.page.read_u16(OFF_LIVE_BYTES) as usize
    }

    /// Iterates live `(slot, record bytes)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SlotId, &'a [u8])> + '_ {
        let page = self.page;
        (0..self.slot_count()).filter_map(move |s| {
            let base = SLOTS_BASE + s as usize * SLOT_ENTRY;
            let off = page.read_u16(base);
            let len = page.read_u16(base + 2);
            if off == DEAD {
                None
            } else {
                Some((
                    SlotId(s),
                    &page.bytes()[off as usize..off as usize + len as usize],
                ))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Page {
        let mut p = Page::new(PageKind::Free);
        SlottedPage::init(&mut p);
        p
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut p = fresh();
        let mut sp = SlottedPage::attach(&mut p).unwrap();
        let a = sp.insert(b"hello").unwrap().unwrap();
        let b = sp.insert(b"world!!").unwrap().unwrap();
        assert_eq!(sp.get(a).unwrap(), b"hello");
        assert_eq!(sp.get(b).unwrap(), b"world!!");
        assert_eq!(sp.live_count(), 2);
    }

    #[test]
    fn delete_reuses_slot() {
        let mut p = fresh();
        let mut sp = SlottedPage::attach(&mut p).unwrap();
        let a = sp.insert(b"aaa").unwrap().unwrap();
        let _b = sp.insert(b"bbb").unwrap().unwrap();
        sp.delete(a).unwrap();
        assert!(!sp.is_live(a));
        assert!(sp.get(a).is_err());
        let c = sp.insert(b"ccc").unwrap().unwrap();
        assert_eq!(c, a, "dead slot id should be reused");
        assert_eq!(sp.get(c).unwrap(), b"ccc");
    }

    #[test]
    fn update_in_place_and_grow() {
        let mut p = fresh();
        let mut sp = SlottedPage::attach(&mut p).unwrap();
        let a = sp.insert(b"0123456789").unwrap().unwrap();
        // shrink
        assert!(sp.update(a, b"xyz").unwrap());
        assert_eq!(sp.get(a).unwrap(), b"xyz");
        // grow
        assert!(sp.update(a, b"a much longer record").unwrap());
        assert_eq!(sp.get(a).unwrap(), b"a much longer record");
    }

    #[test]
    fn fills_page_and_reports_full() {
        let mut p = fresh();
        let mut sp = SlottedPage::attach(&mut p).unwrap();
        let rec = vec![7u8; 100];
        let mut n = 0;
        while let Some(_s) = sp.insert(&rec).unwrap() {
            n += 1;
        }
        // 100-byte cells + 4-byte slots: ~78 records on an 8 KiB page.
        assert!(n > 70, "only {n} records fit");
        assert!(!sp.can_fit(100));
        assert!(sp.can_fit(1)); // tiny records still fit
    }

    #[test]
    fn compaction_recovers_dead_space() {
        let mut p = fresh();
        let mut sp = SlottedPage::attach(&mut p).unwrap();
        let rec = vec![1u8; 1000];
        let mut slots = Vec::new();
        while let Some(s) = sp.insert(&rec).unwrap() {
            slots.push(s);
        }
        // Delete every other record -> fragmented free space.
        for s in slots.iter().step_by(2) {
            sp.delete(*s).unwrap();
        }
        // A 1500-byte record only fits after compaction.
        let big = vec![2u8; 1500];
        let s = sp.insert(&big).unwrap().expect("fits after compaction");
        assert_eq!(sp.get(s).unwrap(), big.as_slice());
        // Remaining original records are intact.
        for s in slots.iter().skip(1).step_by(2) {
            assert_eq!(sp.get(*s).unwrap(), rec.as_slice());
        }
    }

    #[test]
    fn rejects_oversized_record() {
        let mut p = fresh();
        let mut sp = SlottedPage::attach(&mut p).unwrap();
        let huge = vec![0u8; MAX_RECORD + 1];
        assert!(matches!(sp.insert(&huge), Err(Error::RecordTooLarge(_))));
        let max = vec![0u8; MAX_RECORD];
        assert!(sp.insert(&max).unwrap().is_some());
    }

    #[test]
    fn iter_skips_dead() {
        let mut p = fresh();
        let mut sp = SlottedPage::attach(&mut p).unwrap();
        let a = sp.insert(b"a").unwrap().unwrap();
        let b = sp.insert(b"b").unwrap().unwrap();
        let c = sp.insert(b"c").unwrap().unwrap();
        sp.delete(b).unwrap();
        let live: Vec<(SlotId, Vec<u8>)> = sp.iter().map(|(s, r)| (s, r.to_vec())).collect();
        assert_eq!(live, vec![(a, b"a".to_vec()), (c, b"c".to_vec())]);
    }

    #[test]
    fn slot_array_growth_into_fragmented_gap() {
        // Regression: fill the page, shrink records in place so total_free
        // grows while the contiguous gap between slot array and cells stays
        // 0, then insert — the new slot entry must not overrun cell data.
        let mut p = fresh();
        let mut sp = SlottedPage::attach(&mut p).unwrap();
        let rec = vec![3u8; 200];
        let mut slots = Vec::new();
        while let Some(s) = sp.insert(&rec).unwrap() {
            slots.push(s);
        }
        // Shrink every record in place: frees cell bytes while leaving the
        // contiguous gap tiny and fragmented.
        for s in &slots {
            assert!(sp.update(*s, &rec[..100]).unwrap());
        }
        // Insert small records until the page refuses.
        let small = vec![9u8; 50];
        let mut added = Vec::new();
        while let Some(s) = sp.insert(&small).unwrap() {
            added.push(s);
            if added.len() > 500 {
                break;
            }
        }
        assert!(!added.is_empty());
        // Every record still intact.
        for s in &slots {
            assert_eq!(sp.get(*s).unwrap(), &rec[..100]);
        }
        for s in &added {
            assert_eq!(sp.get(*s).unwrap(), small.as_slice());
        }
    }

    #[test]
    fn attach_rejects_wrong_kind() {
        let mut p = Page::new(PageKind::Meta);
        assert!(SlottedPage::attach(&mut p).is_err());
    }
}
