//! On-disk corruption must surface as a checksum error through every read
//! path — the raw disk manager and the buffer pool — and a single bit flip
//! on the read path (simulating a transient media/bus error) must corrupt
//! only that one read.

use std::sync::Arc;
use tcom_kernel::{Error, PageId};
use tcom_storage::buffer::BufferPool;
use tcom_storage::disk::DiskManager;
use tcom_storage::page::{PageKind, PAGE_SIZE};
use tcom_storage::vfs::{Fault, FaultSchedule, FaultVfs};

fn tmpfile(name: &str) -> std::path::PathBuf {
    let p = std::env::temp_dir().join(format!("tcom-cksum-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_file(&p);
    p
}

/// Flip a byte of a page *body* directly in the file, behind the buffer
/// pool's back; the next uncached fetch must fail with a corruption error,
/// not hand out the mangled page.
#[test]
fn corruption_behind_buffer_pool_surfaces() {
    let path = tmpfile("behind-pool");
    {
        let pool = BufferPool::new(8);
        let file = pool.register_file(Arc::new(DiskManager::open(&path).unwrap()));
        let (p0, mut page) = pool.create(file, PageKind::Slotted).unwrap();
        page.body_mut()[100] = 42;
        drop(page);
        assert_eq!(p0, PageId(0));
        pool.flush_and_sync().unwrap();
    }
    // Corrupt one body byte on disk (offset past the 5-byte header).
    {
        use std::io::{Read, Seek, SeekFrom, Write};
        let mut f = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .unwrap();
        f.seek(SeekFrom::Start(PAGE_SIZE as u64 / 2)).unwrap();
        let mut b = [0u8; 1];
        f.read_exact(&mut b).unwrap();
        f.seek(SeekFrom::Start(PAGE_SIZE as u64 / 2)).unwrap();
        f.write_all(&[b[0] ^ 0x01]).unwrap();
    }
    // Fresh pool: the page is not cached, so the fetch goes to disk.
    let pool = BufferPool::new(8);
    let file = pool.register_file(Arc::new(DiskManager::open(&path).unwrap()));
    match pool.fetch_read(file, PageId(0)) {
        Err(Error::Corruption(msg)) => assert!(msg.contains("checksum"), "got: {msg}"),
        Err(e) => panic!("expected checksum corruption error, got {e:?}"),
        Ok(_) => panic!("expected checksum corruption error, got a clean page"),
    }
    let _ = std::fs::remove_file(&path);
}

/// The same corruption injected by the fault VFS as a scheduled read-path
/// bit flip: the flipped read fails verification, the retry succeeds —
/// the underlying durable bytes were never touched.
#[test]
fn bit_flip_read_fault_is_transient() {
    let vfs = FaultVfs::new();
    let path = std::path::Path::new("flip.tcm");
    let dm = Arc::new(DiskManager::open_with(&vfs, path).unwrap());
    {
        let pool = BufferPool::new(8);
        let file = pool.register_file(dm.clone());
        let (_, mut page) = pool.create(file, PageKind::Slotted).unwrap();
        page.body_mut()[0] = 7;
        drop(page);
        pool.flush_and_sync().unwrap();
    }
    // Schedule a bit flip on the next read of the file.
    let mut sched = FaultSchedule::default();
    sched.on_read.insert(
        vfs.read_ops(),
        Fault::BitFlipRead {
            byte: 64,
            mask: 0x10,
        },
    );
    vfs.set_schedule(sched);

    let pool = BufferPool::new(8);
    let file = pool.register_file(Arc::new(DiskManager::open_with(&vfs, path).unwrap()));
    match pool.fetch_read(file, PageId(0)) {
        Err(Error::Corruption(_)) => {}
        Err(e) => panic!("expected corruption from flipped read, got {e:?}"),
        Ok(_) => panic!("expected corruption from flipped read, got a clean page"),
    }
    // The flip affected that one read only: the retry sees clean bytes.
    let page = pool.fetch_read(file, PageId(0)).unwrap();
    assert_eq!(page.body()[0], 7);
}
