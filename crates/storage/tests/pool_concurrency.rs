//! Concurrency stress for the sharded buffer pool: many threads doing
//! mixed `fetch_read` / `fetch_write` / `create` over a pool smaller than
//! the working set. The oracles:
//!
//! * **No lost updates** — every write guard increments a per-page counter
//!   under the frame's write latch; the final counter of each page must
//!   equal the number of increments performed on it.
//! * **No torn reads** — each page carries a value and its negation;
//!   readers must always see a consistent pair.
//! * **Counter arithmetic** — `hits + misses` equals the number of frame
//!   pins requested (every fetch and create pins exactly once).
//!
//! Run under `cargo test --release` in CI with `RUST_TEST_THREADS`
//! unpinned so the stripes see real parallelism.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use tcom_storage::buffer::BufferPool;
use tcom_storage::disk::DiskManager;
use tcom_storage::page::PageKind;

fn tmpfile(name: &str) -> std::path::PathBuf {
    let p = std::env::temp_dir().join(format!("tcom-stress-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_file(&p);
    p
}

/// Deterministic per-thread mixer (split-mix; no external RNG crates).
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[test]
fn mixed_workload_no_lost_updates() {
    const THREADS: usize = 8;
    const OPS: usize = 3_000;
    const PAGES: usize = 96; // working set: 96 pages over a 24-frame pool

    let path = tmpfile("mixed");
    let dm = Arc::new(DiskManager::open(&path).unwrap());
    let pool = BufferPool::with_shards(24, 4, true);
    assert_eq!(pool.shard_count(), 4);
    let file = pool.register_file(dm);

    // Seed the working set and flush it out.
    let mut pids = Vec::with_capacity(PAGES);
    for _ in 0..PAGES {
        let (pid, mut p) = pool.create(file, PageKind::Slotted).unwrap();
        p.write_u64(64, 0); // counter
        p.write_u64(72, 0); // shadow: always == !counter ^ u64::MAX? use pair
        p.write_u64(80, !0u64); // negation of counter
        pids.push(pid);
    }
    pool.flush_all().unwrap();
    pool.reset_stats();

    // Ground truth: increments per page, and total pins requested.
    let increments: Vec<AtomicU64> = (0..PAGES).map(|_| AtomicU64::new(0)).collect();
    let pins = AtomicU64::new(0);
    let creates = AtomicU64::new(0);
    let barrier = Barrier::new(THREADS);

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let pool = &pool;
            let pids = &pids;
            let increments = &increments;
            let pins = &pins;
            let creates = &creates;
            let barrier = &barrier;
            s.spawn(move || {
                let mut rng = 0x1234_5678_u64.wrapping_add(t as u64 * 0xABCDEF);
                barrier.wait();
                for _ in 0..OPS {
                    let r = mix(&mut rng);
                    let i = (r >> 8) as usize % pids.len();
                    match r % 10 {
                        // 60%: read and check the consistent pair.
                        0..=5 => {
                            let g = pool.fetch_read(file, pids[i]).unwrap();
                            let v = g.read_u64(64);
                            let neg = g.read_u64(80);
                            assert_eq!(neg, !v, "torn read on page {i}");
                            pins.fetch_add(1, Ordering::Relaxed);
                        }
                        // 30%: increment under the write latch.
                        6..=8 => {
                            let mut g = pool.fetch_write(file, pids[i]).unwrap();
                            let v = g.read_u64(64) + 1;
                            g.write_u64(64, v);
                            g.write_u64(80, !v);
                            increments[i].fetch_add(1, Ordering::Relaxed);
                            pins.fetch_add(1, Ordering::Relaxed);
                        }
                        // 10%: create fresh pages (grows the working set).
                        _ => {
                            let (_pid, mut g) = pool.create(file, PageKind::Slotted).unwrap();
                            g.write_u64(64, 7);
                            g.write_u64(80, !7u64);
                            creates.fetch_add(1, Ordering::Relaxed);
                            pins.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    // Every increment must be present: no lost updates.
    for (i, pid) in pids.iter().enumerate() {
        let g = pool.fetch_read(file, *pid).unwrap();
        let got = g.read_u64(64);
        let want = increments[i].load(Ordering::Relaxed);
        assert_eq!(got, want, "lost update on page {i}");
        assert_eq!(g.read_u64(80), !want);
    }

    // Counter arithmetic: the stress pins (before the verification reads
    // above) must decompose exactly into hits + misses.
    let s = pool.stats();
    let verification_pins = pids.len() as u64;
    assert_eq!(
        s.hits + s.misses,
        pins.load(Ordering::Relaxed) + verification_pins,
        "hit/miss accounting broke: {s:?}"
    );
    // A 24-frame pool under a 96+ page working set must churn.
    assert!(s.evictions > 0, "expected eviction traffic: {s:?}");
    assert!(s.misses > 0);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn concurrent_cold_fetches_of_one_page_load_once() {
    // With the mapping published only after a successful load, N threads
    // racing the first fetch of one page produce exactly 1 miss and N-1
    // hits: the loser threads block on the shard lock and then hit.
    const THREADS: usize = 8;
    let path = tmpfile("once");
    let dm = Arc::new(DiskManager::open(&path).unwrap());
    let pool = BufferPool::with_shards(64, 8, true);
    let file = pool.register_file(dm);

    let (pid, mut g) = pool.create(file, PageKind::Slotted).unwrap();
    g.write_u64(64, 4242);
    drop(g);
    pool.flush_all().unwrap();
    // Evict the page by walking a larger working set through its shard.
    for _ in 0..3 {
        for _ in 0..128 {
            let (_p, g) = pool.create(file, PageKind::Slotted).unwrap();
            drop(g);
        }
    }
    pool.reset_stats();

    let barrier = Barrier::new(THREADS);
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let pool = &pool;
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                let g = pool.fetch_read(file, pid).unwrap();
                assert_eq!(g.read_u64(64), 4242);
            });
        }
    });
    let s = pool.stats();
    assert_eq!(s.misses, 1, "page must be loaded exactly once: {s:?}");
    assert_eq!(s.hits, THREADS as u64 - 1, "{s:?}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn flush_races_with_writers() {
    // flush_all runs concurrently with writer threads; afterwards a full
    // flush + reopen must observe every increment (write-back never loses
    // a latched update, and a failed/raced flush never clears dirt it
    // didn't write).
    const THREADS: usize = 4;
    const ROUNDS: usize = 400;
    let path = tmpfile("flushrace");
    let dm = Arc::new(DiskManager::open(&path).unwrap());
    let pool = BufferPool::with_shards(16, 2, true);
    let file = pool.register_file(dm);

    let mut pids = Vec::new();
    for _ in 0..8 {
        let (pid, mut p) = pool.create(file, PageKind::Slotted).unwrap();
        p.write_u64(64, 0);
        pids.push(pid);
    }

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let pool = &pool;
            let pids = &pids;
            s.spawn(move || {
                for r in 0..ROUNDS {
                    let i = (t * ROUNDS + r) % pids.len();
                    let mut g = pool.fetch_write(file, pids[i]).unwrap();
                    let v = g.read_u64(64);
                    g.write_u64(64, v + 1);
                    drop(g);
                    if r % 64 == 0 {
                        pool.flush_all().unwrap();
                    }
                }
            });
        }
    });
    pool.flush_and_sync().unwrap();

    // Reopen the file cold: disk state must hold the full sum.
    let dm = DiskManager::open(&path).unwrap();
    let total: u64 = pids
        .iter()
        .map(|pid| dm.read_page(*pid).unwrap().read_u64(64))
        .sum();
    assert_eq!(total, (THREADS * ROUNDS) as u64);
    let _ = std::fs::remove_file(&path);
}
