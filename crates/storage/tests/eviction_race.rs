//! Deterministic interleaving coverage for the shard eviction path,
//! extending the PR-1 `pin_frame` regression: evicting a page while
//! another thread pins it must never hand out a stale frame.
//!
//! The pool's structural guarantee is that a `(file, page)` key appears in
//! a shard's mapping only while its frame holds the loaded (or freshly
//! formatted) content — the miss path fills the frame *before* publishing
//! the mapping, under the shard lock. These tests drive the interleavings
//! that historically break that invariant, staged with barriers so every
//! run exercises the same schedule.

use std::sync::{Arc, Barrier};
use tcom_storage::buffer::BufferPool;
use tcom_storage::disk::DiskManager;
use tcom_storage::page::PageKind;
use tcom_storage::vfs::{Fault, FaultSchedule, FaultVfs};

fn tmpfile(name: &str) -> std::path::PathBuf {
    let p = std::env::temp_dir().join(format!("tcom-evrace-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_file(&p);
    p
}

/// Interleaving 1 — pin vs. eviction pressure. A reader holds a pin on
/// page X while a second thread storms the (single) shard with enough
/// fetches to turn the clock over many times. X must survive untouched;
/// the storm sees evictions of everything else. Staged in lockstep rounds
/// so the storm provably runs *while* the pin is held.
#[test]
fn pinned_page_never_stolen_by_concurrent_eviction() {
    const ROUNDS: usize = 50;
    let path = tmpfile("pin-vs-evict");
    let dm = Arc::new(DiskManager::open(&path).unwrap());
    // One shard: every fetch contends on the same mapping and clock.
    let pool = BufferPool::with_shards(4, 1, true);
    let file = pool.register_file(dm);

    let (pid_x, mut gx) = pool.create(file, PageKind::Slotted).unwrap();
    gx.write_u64(64, 0xA11CE);
    drop(gx);
    // A bed of victim pages for the storm.
    let mut bed = Vec::new();
    for i in 0..8u64 {
        let (pid, mut g) = pool.create(file, PageKind::Slotted).unwrap();
        g.write_u64(64, i);
        bed.push(pid);
    }
    pool.flush_all().unwrap();

    let start = Barrier::new(2);
    let round = Barrier::new(2);
    std::thread::scope(|s| {
        let pool_ref = &pool;
        let bed_ref = &bed;
        let start_ref = &start;
        let round_ref = &round;
        // Pinner: holds the read guard across each full storm round.
        s.spawn(move || {
            start_ref.wait();
            for _ in 0..ROUNDS {
                let g = pool_ref.fetch_read(file, pid_x).unwrap();
                round_ref.wait(); // storm round runs while we hold the pin
                round_ref.wait(); // storm round done
                assert_eq!(g.read_u64(64), 0xA11CE, "pinned frame was stolen");
            }
        });
        // Storm: in each round, cycle the whole bed through the 4-frame
        // shard twice — the clock passes the pinned frame repeatedly and
        // must skip it every time.
        s.spawn(move || {
            start_ref.wait();
            for _ in 0..ROUNDS {
                round_ref.wait();
                for _ in 0..2 {
                    for (i, pid) in bed_ref.iter().enumerate() {
                        let g = pool_ref.fetch_read(file, *pid).unwrap();
                        assert_eq!(g.read_u64(64), i as u64);
                    }
                }
                round_ref.wait();
            }
        });
    });

    // After the dust settles the pinned page is still correct and evicted
    // bed pages reload correctly.
    let g = pool.fetch_read(file, pid_x).unwrap();
    assert_eq!(g.read_u64(64), 0xA11CE);
    let _ = std::fs::remove_file(&path);
}

/// Interleaving 2 — re-fetch immediately after eviction. Thread A drops
/// its pin at a barrier; thread B evicts X by filling the shard; A then
/// re-fetches X and must see the written content via a fresh load (never
/// a stale mapping to a recycled frame).
#[test]
fn refetch_after_eviction_reloads_fresh_content() {
    const ROUNDS: u64 = 100;
    let path = tmpfile("refetch");
    let dm = Arc::new(DiskManager::open(&path).unwrap());
    let pool = BufferPool::with_shards(4, 1, true);
    let file = pool.register_file(dm);

    let (pid_x, g) = pool.create(file, PageKind::Slotted).unwrap();
    drop(g);
    let mut bed = Vec::new();
    for _ in 0..6 {
        let (pid, g) = pool.create(file, PageKind::Slotted).unwrap();
        drop(g);
        bed.push(pid);
    }
    pool.flush_all().unwrap();

    let phase = Barrier::new(2);
    std::thread::scope(|s| {
        let pool_ref = &pool;
        let bed_ref = &bed;
        let phase_ref = &phase;
        // Writer/re-fetcher.
        s.spawn(move || {
            for r in 0..ROUNDS {
                {
                    let mut g = pool_ref.fetch_write(file, pid_x).unwrap();
                    g.write_u64(64, r);
                } // pin dropped
                phase_ref.wait(); // evictor storms now
                phase_ref.wait(); // storm done, X very likely evicted
                let g = pool_ref.fetch_read(file, pid_x).unwrap();
                assert_eq!(g.read_u64(64), r, "re-fetch saw stale frame");
            }
        });
        // Evictor.
        s.spawn(move || {
            for _ in 0..ROUNDS {
                phase_ref.wait();
                for _ in 0..2 {
                    for pid in bed_ref {
                        let _ = pool_ref.fetch_read(file, *pid).unwrap();
                    }
                }
                phase_ref.wait();
            }
        });
    });
    let s = pool.stats();
    assert!(s.evictions > ROUNDS, "storm must actually evict: {s:?}");
    let _ = std::fs::remove_file(&path);
}

/// Interleaving 3 — failed load during a racy miss (PR-1 regression,
/// multi-threaded form). A scheduled read-fault corrupts one physical
/// read of page X while several threads race the cold fetch. The mapping
/// must never be published for the failed load: exactly the faulted
/// reader errors, everyone else (including later fetches) reads the true
/// content, and the pool stays coherent.
#[test]
fn failed_load_under_race_leaves_pool_coherent() {
    // The fault VFS is an in-memory file system with a global read-op
    // counter; build the file through it once, then run each race round
    // against a fresh pool with one scheduled bit flip. Which logical
    // fetch hits the fault depends on the thread schedule, so sweep a
    // window of op offsets — each run is one deterministic fault point
    // under racing threads.
    let vfs = FaultVfs::new();
    let path = std::path::Path::new("badload.tcm");
    let (pid_x, bed) = {
        let dm = Arc::new(DiskManager::open_with(&vfs, path).unwrap());
        let pool = BufferPool::with_shards(4, 1, true);
        let file = pool.register_file(dm);
        let (pid_x, mut g) = pool.create(file, PageKind::Slotted).unwrap();
        g.write_u64(64, 777);
        drop(g);
        let mut bed = Vec::new();
        for _ in 0..6 {
            let (pid, g) = pool.create(file, PageKind::Slotted).unwrap();
            drop(g);
            bed.push(pid);
        }
        pool.flush_and_sync().unwrap();
        (pid_x, bed)
    };

    for fault_offset in 0..12u64 {
        let mut sched = FaultSchedule::default();
        sched.on_read.insert(
            vfs.read_ops() + fault_offset,
            Fault::BitFlipRead {
                byte: 100,
                mask: 0x40,
            },
        );
        vfs.set_schedule(sched);
        let dm = Arc::new(DiskManager::open_with(&vfs, path).unwrap());
        let pool = BufferPool::with_shards(4, 1, true);
        let file = pool.register_file(dm);

        let barrier = Barrier::new(4);
        let errors = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let pool = &pool;
                let bed = &bed;
                let barrier = &barrier;
                let errors = &errors;
                s.spawn(move || {
                    barrier.wait();
                    for round in 0..4 {
                        match pool.fetch_read(file, pid_x) {
                            Ok(g) => assert_eq!(g.read_u64(64), 777),
                            Err(e) => {
                                // Only a corruption error from the faulted
                                // read is acceptable.
                                assert!(
                                    format!("{e}").contains("checksum"),
                                    "unexpected error: {e}"
                                );
                                errors.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            }
                        }
                        // Churn the shard so X gets evicted and re-read.
                        for pid in &bed[..(round % bed.len())] {
                            let _ = pool.fetch_read(file, *pid);
                        }
                    }
                });
            }
        });
        // The transient fault hits at most one physical read.
        assert!(
            errors.load(std::sync::atomic::Ordering::Relaxed) <= 1,
            "fault_offset={fault_offset}: one scheduled fault must fail at most one fetch"
        );
        // Pool fully coherent afterwards: the true content is readable.
        let g = pool.fetch_read(file, pid_x).unwrap();
        assert_eq!(g.read_u64(64), 777);
    }
}
