//! Property tests for the disk-resident B⁺-tree: observational equivalence
//! with `std::collections::BTreeMap` under arbitrary operation sequences,
//! at shrunken fanouts (to force deep trees) and at the real page fanout.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;
use tcom_storage::btree::BTree;
use tcom_storage::buffer::BufferPool;
use tcom_storage::disk::DiskManager;
use tcom_storage::keys::BKey;

#[derive(Clone, Debug)]
enum Op {
    Insert(u64, u64, u64),
    Remove(u64, u64),
    Get(u64, u64),
    Range(u64, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u64..200, 0u64..4, any::<u64>()).prop_map(|(hi, lo, v)| Op::Insert(hi, lo, v)),
        2 => (0u64..200, 0u64..4).prop_map(|(hi, lo)| Op::Remove(hi, lo)),
        2 => (0u64..200, 0u64..4).prop_map(|(hi, lo)| Op::Get(hi, lo)),
        1 => (0u64..200, 0u64..220).prop_map(|(lo, hi)| Op::Range(lo, hi)),
    ]
}

fn run_against_model(ops: &[Op], fanout: Option<(usize, usize)>, tag: &str) {
    let path = std::env::temp_dir().join(format!("tcom-btprop-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let pool = BufferPool::new(128);
    let file = pool.register_file(Arc::new(DiskManager::open(&path).unwrap()));
    let tree = BTree::create(pool, file).unwrap();
    let tree = match fanout {
        Some((l, i)) => tree.with_fanout(l, i),
        None => tree,
    };
    let mut model: BTreeMap<BKey, u64> = BTreeMap::new();

    for op in ops {
        match op {
            Op::Insert(hi, lo, v) => {
                let k = BKey::new(*hi, *lo);
                assert_eq!(
                    tree.insert(k, *v).unwrap(),
                    model.insert(k, *v),
                    "insert {k:?}"
                );
            }
            Op::Remove(hi, lo) => {
                let k = BKey::new(*hi, *lo);
                assert_eq!(tree.remove(k).unwrap(), model.remove(&k), "remove {k:?}");
            }
            Op::Get(hi, lo) => {
                let k = BKey::new(*hi, *lo);
                assert_eq!(tree.get(k).unwrap(), model.get(&k).copied(), "get {k:?}");
            }
            Op::Range(lo, hi) => {
                let (lo, hi) = (*lo.min(hi), *lo.max(hi));
                let (lo_k, hi_k) = (BKey::min_for(lo), BKey::min_for(hi));
                let got = tree.range_vec(lo_k, hi_k).unwrap();
                let want: Vec<(BKey, u64)> =
                    model.range(lo_k..hi_k).map(|(k, v)| (*k, *v)).collect();
                assert_eq!(got, want, "range [{lo}, {hi})");
            }
        }
    }
    // Final full sweep.
    assert_eq!(tree.len().unwrap(), model.len() as u64);
    let got = tree.range_vec(BKey::MIN, BKey::MAX).unwrap();
    let want: Vec<(BKey, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
    assert_eq!(got, want);
    let _ = std::fs::remove_file(&path);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// Tiny fanout: splits at every level within a few dozen inserts.
    #[test]
    fn matches_model_tiny_fanout(ops in proptest::collection::vec(op_strategy(), 1..150), seed in 0u64..u64::MAX) {
        run_against_model(&ops, Some((3, 3)), &format!("t{seed:x}"));
    }

    /// Medium fanout: mixes leaf-only and internal splits.
    #[test]
    fn matches_model_medium_fanout(ops in proptest::collection::vec(op_strategy(), 1..150), seed in 0u64..u64::MAX) {
        run_against_model(&ops, Some((16, 16)), &format!("m{seed:x}"));
    }

    /// Real page fanout: exercises the production layout arithmetic.
    #[test]
    fn matches_model_full_fanout(ops in proptest::collection::vec(op_strategy(), 1..120), seed in 0u64..u64::MAX) {
        run_against_model(&ops, None, &format!("f{seed:x}"));
    }
}

/// Deterministic deep-tree persistence: build with tiny fanout, reopen,
/// verify everything including the leaf chain order.
#[test]
fn deep_tree_persists() {
    let path = std::env::temp_dir().join(format!("tcom-btprop-persist-{}", std::process::id()));
    let _ = std::fs::remove_file(&path);
    {
        let pool = BufferPool::new(256);
        let file = pool.register_file(Arc::new(DiskManager::open(&path).unwrap()));
        let tree = BTree::create(pool.clone(), file).unwrap().with_fanout(3, 3);
        for i in 0..500u64 {
            tree.insert(BKey::new(i * 7 % 501, i), i).unwrap();
        }
        assert!(
            tree.height().unwrap() >= 4,
            "height {}",
            tree.height().unwrap()
        );
        pool.flush_and_sync().unwrap();
    }
    let pool = BufferPool::new(256);
    let file = pool.register_file(Arc::new(DiskManager::open(&path).unwrap()));
    let tree = BTree::open(pool, file).unwrap();
    assert_eq!(tree.len().unwrap(), 500);
    let all = tree.range_vec(BKey::MIN, BKey::MAX).unwrap();
    assert_eq!(all.len(), 500);
    for w in all.windows(2) {
        assert!(w[0].0 < w[1].0, "leaf chain out of order");
    }
    let _ = std::fs::remove_file(&path);
}
