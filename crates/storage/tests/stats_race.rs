//! Buffer-pool statistics under concurrency: the counters must be
//! race-free and monotone, `hits + misses == fetches` must hold at rest,
//! and [`BufferPool::reset_stats`] must hand out *torn-free* epochs — the
//! regression surface for the swap-based reset: every counted event lands
//! in exactly one returned snapshot (or the final residue), none is lost
//! or double-counted, even with readers racing the reset.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use tcom_storage::buffer::{BufferPool, BufferStats};
use tcom_storage::disk::DiskManager;
use tcom_storage::page::PageKind;

fn tmpfile(name: &str) -> std::path::PathBuf {
    let p = std::env::temp_dir().join(format!("tcom-stats-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_file(&p);
    p
}

fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn add(total: &mut BufferStats, s: &BufferStats) {
    total.fetches += s.fetches;
    total.hits += s.hits;
    total.misses += s.misses;
    total.evictions += s.evictions;
    total.writebacks += s.writebacks;
}

/// Sequential regression for the reset fix: the returned snapshot is the
/// pre-reset state and the live counters restart from zero.
#[test]
fn reset_returns_pre_reset_stats() {
    let path = tmpfile("reset-seq");
    let dm = Arc::new(DiskManager::open(&path).unwrap());
    let pool = BufferPool::with_shards(8, 1, true);
    let file = pool.register_file(dm);

    let mut pids = Vec::new();
    for _ in 0..16 {
        let (pid, _) = pool.create(file, PageKind::Slotted).unwrap();
        pids.push(pid);
    }
    pool.flush_all().unwrap();
    pool.reset_stats();

    for pid in &pids {
        drop(pool.fetch_read(file, *pid).unwrap());
    }
    let live = pool.stats();
    assert_eq!(live.fetches, 16);
    assert_eq!(live.hits + live.misses, live.fetches);

    let returned = pool.reset_stats();
    assert_eq!(returned, live, "reset must return the pre-reset counters");
    let fresh = pool.stats();
    assert_eq!(fresh.fetches, 0);
    assert_eq!(fresh.hits + fresh.misses, 0);
}

/// Readers hammer the pool while a harvester thread repeatedly calls
/// `reset_stats`. Conservation law: the sum of every harvested snapshot
/// plus the final residue equals the per-thread ground-truth totals —
/// nothing lost, nothing duplicated — and the summed counters satisfy
/// `hits + misses == fetches`.
#[test]
fn reset_conserves_counts_under_concurrency() {
    const THREADS: usize = 6;
    const OPS: usize = 4_000;
    const PAGES: usize = 64; // over a 16-frame pool: plenty of misses

    let path = tmpfile("reset-race");
    let dm = Arc::new(DiskManager::open(&path).unwrap());
    let pool = BufferPool::with_shards(16, 4, true);
    let file = pool.register_file(dm);

    let mut pids = Vec::with_capacity(PAGES);
    for _ in 0..PAGES {
        let (pid, _) = pool.create(file, PageKind::Slotted).unwrap();
        pids.push(pid);
    }
    pool.flush_all().unwrap();
    pool.reset_stats();

    let fetches_done = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let barrier = Barrier::new(THREADS + 1);

    let mut harvested = BufferStats::default();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let pool = &pool;
            let pids = &pids;
            let fetches_done = &fetches_done;
            let barrier = &barrier;
            s.spawn(move || {
                let mut rng = 0xC0FFEE ^ (t as u64) << 17;
                barrier.wait();
                for _ in 0..OPS {
                    let pid = pids[(mix(&mut rng) as usize) % PAGES];
                    drop(pool.fetch_read(file, pid).unwrap());
                    fetches_done.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Harvester: keeps swapping epochs out from under the readers.
        let h = s.spawn(|| {
            let mut acc = BufferStats::default();
            barrier.wait();
            while !stop.load(Ordering::Acquire) {
                add(&mut acc, &pool.reset_stats());
                std::thread::yield_now();
            }
            acc
        });
        // Scope join order: wait for the readers by joining the harvester
        // last — tell it to stop once all reader handles are implicitly
        // joined at scope end. Explicitly: spawn readers, then busy-wait on
        // the ground-truth counter.
        while fetches_done.load(Ordering::Relaxed) < (THREADS * OPS) as u64 {
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Release);
        harvested = h.join().unwrap();
    });

    // Residue left after the last harvest.
    add(&mut harvested, &pool.reset_stats());

    let expected = (THREADS * OPS) as u64;
    assert_eq!(
        harvested.fetches, expected,
        "every fetch lands in exactly one epoch"
    );
    assert_eq!(
        harvested.hits + harvested.misses,
        harvested.fetches,
        "hit/miss accounting conserved across resets: {harvested:?}"
    );
    assert!(harvested.misses > 0, "working set exceeds the pool");
}

/// Without resets, the counters are monotone non-decreasing while observed
/// concurrently with the workload, and exact at rest.
#[test]
fn stats_monotone_and_exact_at_rest() {
    const THREADS: usize = 4;
    const OPS: usize = 2_000;
    const PAGES: usize = 32;

    let path = tmpfile("monotone");
    let dm = Arc::new(DiskManager::open(&path).unwrap());
    let pool = BufferPool::with_shards(16, 2, true);
    let file = pool.register_file(dm);

    let mut pids = Vec::with_capacity(PAGES);
    for _ in 0..PAGES {
        let (pid, _) = pool.create(file, PageKind::Slotted).unwrap();
        pids.push(pid);
    }
    pool.flush_all().unwrap();
    pool.reset_stats();

    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let mut workers = Vec::with_capacity(THREADS);
        for t in 0..THREADS {
            let pool = &pool;
            let pids = &pids;
            workers.push(s.spawn(move || {
                let mut rng = 0xDEAD_BEEF ^ (t as u64) << 9;
                for _ in 0..OPS {
                    let pid = pids[(mix(&mut rng) as usize) % PAGES];
                    drop(pool.fetch_read(file, pid).unwrap());
                }
            }));
        }
        // Concurrent observer: monotonicity of each counter.
        let pool = &pool;
        let stop = &stop;
        s.spawn(move || {
            let mut last = pool.stats();
            while !stop.load(Ordering::Acquire) {
                let now = pool.stats();
                assert!(now.fetches >= last.fetches, "fetches regressed");
                assert!(now.hits >= last.hits, "hits regressed");
                assert!(now.misses >= last.misses, "misses regressed");
                assert!(now.evictions >= last.evictions, "evictions regressed");
                assert!(now.writebacks >= last.writebacks, "writebacks regressed");
                last = now;
                std::thread::yield_now();
            }
        });
        for w in workers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Release);
    });

    let s = pool.stats();
    assert_eq!(s.fetches, (THREADS * OPS) as u64);
    assert_eq!(s.hits + s.misses, s.fetches);
}
