//! Logical log records.

use tcom_kernel::codec::{Decoder, Encoder};
use tcom_kernel::{AtomId, Error, Interval, Result, TimePoint, Tuple, TxnId};

/// One logical log record.
#[derive(Clone, Debug, PartialEq)]
pub enum LogRecord {
    /// Transaction start.
    Begin {
        /// The transaction.
        txn: TxnId,
    },
    /// Transaction commit — everything logged for `txn` becomes durable.
    Commit {
        /// The transaction.
        txn: TxnId,
    },
    /// Transaction abort — everything logged for `txn` is ignored by redo.
    Abort {
        /// The transaction.
        txn: TxnId,
    },
    /// A version was stored with `tt = [tt_start, ∞)`.
    InsertVersion {
        /// Owning transaction.
        txn: TxnId,
        /// The atom.
        atom: AtomId,
        /// Valid-time extent of the new version.
        vt: Interval,
        /// Transaction-time start (the txn's commit clock value).
        tt_start: TimePoint,
        /// The tuple.
        tuple: Tuple,
    },
    /// The current version with the given valid-time start was closed.
    CloseVersion {
        /// Owning transaction.
        txn: TxnId,
        /// The atom.
        atom: AtomId,
        /// Identifies the current version (unique among current versions).
        vt_start: TimePoint,
        /// Transaction-time end.
        tt_end: TimePoint,
    },
    /// Checkpoint: all data files flushed and synced. Carries the engine
    /// clock and the per-type next-atom-number counters.
    Checkpoint {
        /// Engine transaction-time clock at the checkpoint.
        clock: TimePoint,
        /// `(atom type id, next atom number)` pairs.
        next_atom_nos: Vec<(u32, u64)>,
    },
    /// A compaction segment was published for an atom type: segment file
    /// `seg` holds every closed version of the type with
    /// `tt.end <= cutoff`, and those versions are (being) removed from the
    /// hot heaps. This record is the swap's commit point — once durable,
    /// recovery redoes the heap-side extraction; before it, the segment
    /// temp file is garbage.
    SegmentSwap {
        /// The atom type whose closed history was segmented.
        ty: u32,
        /// Segment sequence number within the type (names the file).
        seg: u64,
        /// Every archived version has `tt.end <= cutoff`.
        cutoff: TimePoint,
    },
}

impl LogRecord {
    /// The owning transaction, when the record has one.
    pub fn txn(&self) -> Option<TxnId> {
        match self {
            LogRecord::Begin { txn }
            | LogRecord::Commit { txn }
            | LogRecord::Abort { txn }
            | LogRecord::InsertVersion { txn, .. }
            | LogRecord::CloseVersion { txn, .. } => Some(*txn),
            LogRecord::Checkpoint { .. } | LogRecord::SegmentSwap { .. } => None,
        }
    }

    /// Encodes to the frame payload form.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::with_capacity(64);
        match self {
            LogRecord::Begin { txn } => {
                e.put_u8(0);
                e.put_u64(txn.0);
            }
            LogRecord::Commit { txn } => {
                e.put_u8(1);
                e.put_u64(txn.0);
            }
            LogRecord::Abort { txn } => {
                e.put_u8(2);
                e.put_u64(txn.0);
            }
            LogRecord::InsertVersion {
                txn,
                atom,
                vt,
                tt_start,
                tuple,
            } => {
                e.put_u8(3);
                e.put_u64(txn.0);
                e.put_atom_id(*atom);
                e.put_interval(vt);
                e.put_time(*tt_start);
                e.put_tuple(tuple);
            }
            LogRecord::CloseVersion {
                txn,
                atom,
                vt_start,
                tt_end,
            } => {
                e.put_u8(4);
                e.put_u64(txn.0);
                e.put_atom_id(*atom);
                e.put_time(*vt_start);
                e.put_time(*tt_end);
            }
            LogRecord::Checkpoint {
                clock,
                next_atom_nos,
            } => {
                e.put_u8(5);
                e.put_time(*clock);
                e.put_u64(next_atom_nos.len() as u64);
                for (ty, no) in next_atom_nos {
                    e.put_u64(*ty as u64);
                    e.put_u64(*no);
                }
            }
            LogRecord::SegmentSwap { ty, seg, cutoff } => {
                e.put_u8(6);
                e.put_u64(*ty as u64);
                e.put_u64(*seg);
                e.put_time(*cutoff);
            }
        }
        e.finish()
    }

    /// Decodes a frame payload.
    pub fn decode(bytes: &[u8]) -> Result<LogRecord> {
        let mut d = Decoder::new(bytes);
        let rec = match d.get_u8()? {
            0 => LogRecord::Begin {
                txn: TxnId(d.get_u64()?),
            },
            1 => LogRecord::Commit {
                txn: TxnId(d.get_u64()?),
            },
            2 => LogRecord::Abort {
                txn: TxnId(d.get_u64()?),
            },
            3 => LogRecord::InsertVersion {
                txn: TxnId(d.get_u64()?),
                atom: d.get_atom_id()?,
                vt: d.get_interval()?,
                tt_start: d.get_time()?,
                tuple: d.get_tuple()?,
            },
            4 => LogRecord::CloseVersion {
                txn: TxnId(d.get_u64()?),
                atom: d.get_atom_id()?,
                vt_start: d.get_time()?,
                tt_end: d.get_time()?,
            },
            5 => {
                let clock = d.get_time()?;
                let n = d.get_u64()? as usize;
                if n > d.remaining() {
                    return Err(Error::corruption("checkpoint counter count exceeds buffer"));
                }
                let mut next_atom_nos = Vec::with_capacity(n);
                for _ in 0..n {
                    let ty = d.get_u64()? as u32;
                    let no = d.get_u64()?;
                    next_atom_nos.push((ty, no));
                }
                LogRecord::Checkpoint {
                    clock,
                    next_atom_nos,
                }
            }
            6 => LogRecord::SegmentSwap {
                ty: d.get_u64()? as u32,
                seg: d.get_u64()?,
                cutoff: d.get_time()?,
            },
            t => return Err(Error::corruption(format!("unknown log record tag {t}"))),
        };
        if !d.is_exhausted() {
            return Err(Error::corruption("trailing bytes in log record"));
        }
        Ok(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcom_kernel::time::iv;
    use tcom_kernel::{AtomNo, AtomTypeId, Value};

    fn all_records() -> Vec<LogRecord> {
        vec![
            LogRecord::Begin { txn: TxnId(7) },
            LogRecord::Commit { txn: TxnId(7) },
            LogRecord::Abort { txn: TxnId(8) },
            LogRecord::InsertVersion {
                txn: TxnId(7),
                atom: AtomId::new(AtomTypeId(1), AtomNo(99)),
                vt: iv(5, 10),
                tt_start: TimePoint(3),
                tuple: Tuple::new(vec![Value::Int(1), Value::from("x"), Value::Null]),
            },
            LogRecord::CloseVersion {
                txn: TxnId(7),
                atom: AtomId::new(AtomTypeId(1), AtomNo(99)),
                vt_start: TimePoint(5),
                tt_end: TimePoint(9),
            },
            LogRecord::Checkpoint {
                clock: TimePoint(42),
                next_atom_nos: vec![(0, 100), (1, 7)],
            },
            LogRecord::SegmentSwap {
                ty: 3,
                seg: 2,
                cutoff: TimePoint(41),
            },
        ]
    }

    #[test]
    fn roundtrip_all_variants() {
        for r in all_records() {
            let bytes = r.encode();
            assert_eq!(LogRecord::decode(&bytes).unwrap(), r);
        }
    }

    #[test]
    fn txn_extraction() {
        let rs = all_records();
        assert_eq!(rs[0].txn(), Some(TxnId(7)));
        assert_eq!(rs[5].txn(), None);
        assert_eq!(rs[6].txn(), None);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(LogRecord::decode(&[]).is_err());
        assert!(LogRecord::decode(&[99]).is_err());
        let mut bytes = LogRecord::Begin { txn: TxnId(1) }.encode();
        bytes.push(0xFF);
        assert!(LogRecord::decode(&bytes).is_err());
    }
}
