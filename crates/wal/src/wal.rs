//! The log manager: framed appends, crash-tolerant reads, truncation.

use crate::record::LogRecord;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use tcom_kernel::codec::crc32c;
use tcom_kernel::{Lsn, Result};
use tcom_obs::{Counter, Histogram};
use tcom_storage::vfs::{StdVfs, Vfs, VfsFile};

/// When the log file is fsynced.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SyncPolicy {
    /// fsync on every commit (full durability; the default).
    OnCommit,
    /// fsync only at checkpoints (benchmarks; loses the tail on power
    /// failure but never corrupts).
    OnCheckpoint,
}

struct Inner {
    file: Arc<dyn VfsFile>,
    /// Next append offset == current log length in bytes.
    end: u64,
    /// The log's *epoch*: a fresh, incarnation-unique value drawn at every
    /// open and at every [`Wal::reset_with`] truncation. LSNs are byte
    /// offsets, so a truncation makes old LSNs ambiguous; the epoch lets a
    /// replication subscriber detect that its resume position belongs to a
    /// log that no longer exists.
    epoch: u64,
}

/// Draws an epoch no other log incarnation of this or any concurrently
/// running process will draw (process id ⊕ a process-local counter).
fn fresh_epoch() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(1);
    ((std::process::id() as u64) << 32) | COUNTER.fetch_add(1, Ordering::Relaxed)
}

/// One chunk of raw, CRC-validated WAL frames handed to a replication
/// subscriber: whole frames only, starting at `start`, within the durable
/// prefix of log incarnation `epoch`.
#[derive(Clone, Debug)]
pub struct WalChunk {
    /// The log incarnation these bytes belong to.
    pub epoch: u64,
    /// Byte offset of the first frame in `bytes`.
    pub start: Lsn,
    /// Raw frame bytes (`[len][crc][payload]`*, zero or more whole frames).
    pub bytes: Vec<u8>,
}

/// Group-commit durability gate (leader/follower fsync batching).
struct SyncGate {
    /// Log length known to be on stable storage.
    synced_end: u64,
    /// True while some thread is inside `file.sync()` on the gate's
    /// behalf; arriving committers become followers and wait.
    leader_active: bool,
}

/// Shared observability handles of one [`Wal`]. Cloning shares the
/// underlying cells, so the database registry can hold the same handles
/// the log increments.
#[derive(Clone, Default)]
pub struct WalObs {
    /// Records appended.
    pub appends: Counter,
    /// Frame bytes appended (payload + 8-byte header).
    pub bytes: Counter,
    /// fsyncs issued.
    pub fsyncs: Counter,
    /// Group-commit size: write batches (one per committing transaction,
    /// or one per standalone record) made durable by each fsync.
    pub group_size: Histogram,
}

/// An append-only write-ahead log.
pub struct Wal {
    inner: Mutex<Inner>,
    path: PathBuf,
    policy: SyncPolicy,
    obs: WalObs,
    /// Write batches appended since the last fsync (feeds
    /// `obs.group_size`): a batch is one `append_all` (a transaction's
    /// records) or one standalone `append`.
    unsynced: AtomicU64,
    gate: Mutex<SyncGate>,
    gate_changed: Condvar,
}

impl Wal {
    /// Opens (creating if missing) the log at `path` on the real file
    /// system.
    pub fn open(path: impl AsRef<Path>, policy: SyncPolicy) -> Result<Wal> {
        Wal::open_with(&StdVfs, path, policy)
    }

    /// Opens (creating if missing) the log at `path` through `vfs`.
    ///
    /// `open` truncates the file to the last valid frame boundary so new
    /// appends never interleave with a torn tail left by a crash.
    pub fn open_with(vfs: &dyn Vfs, path: impl AsRef<Path>, policy: SyncPolicy) -> Result<Wal> {
        let path = path.as_ref().to_owned();
        let file = vfs.open(&path)?;
        // Find the end of the valid prefix.
        let valid_end = scan_valid_end(&file)?;
        if valid_end != file.len()? {
            file.set_len(valid_end)?;
        }
        Ok(Wal {
            inner: Mutex::new(Inner {
                file,
                end: valid_end,
                epoch: fresh_epoch(),
            }),
            path,
            policy,
            obs: WalObs::default(),
            unsynced: AtomicU64::new(0),
            gate: Mutex::new(SyncGate {
                // The surviving prefix was durable before the reopen.
                synced_end: valid_end,
                leader_active: false,
            }),
            gate_changed: Condvar::new(),
        })
    }

    /// The configured sync policy.
    pub fn policy(&self) -> SyncPolicy {
        self.policy
    }

    /// The log's observability handles (clone to register them).
    pub fn obs(&self) -> &WalObs {
        &self.obs
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current log length in bytes.
    pub fn len(&self) -> u64 {
        self.inner.lock().expect("wal lock").end
    }

    /// True iff the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a record, returning its LSN (byte offset of the frame).
    pub fn append(&self, rec: &LogRecord) -> Result<Lsn> {
        let frame = encode_frame(rec);
        let mut inner = self.inner.lock().expect("wal lock");
        let lsn = Lsn(inner.end);
        inner.file.write_at(&frame, inner.end)?;
        inner.end += frame.len() as u64;
        self.obs.appends.inc();
        self.obs.bytes.add(frame.len() as u64);
        self.unsynced.fetch_add(1, Ordering::Relaxed);
        Ok(lsn)
    }

    /// Appends a whole batch of records in one contiguous write under one
    /// lock acquisition, returning the log length *after* the batch — the
    /// LSN a committer hands to [`Wal::sync_to`] to make the batch
    /// durable. Concurrent `append_all` calls never interleave records.
    pub fn append_all(&self, recs: &[LogRecord]) -> Result<Lsn> {
        let mut buf = Vec::new();
        for rec in recs {
            buf.extend_from_slice(&encode_frame(rec));
        }
        let mut inner = self.inner.lock().expect("wal lock");
        inner.file.write_at(&buf, inner.end)?;
        inner.end += buf.len() as u64;
        self.obs.appends.add(recs.len() as u64);
        self.obs.bytes.add(buf.len() as u64);
        self.unsynced.fetch_add(1, Ordering::Relaxed);
        Ok(Lsn(inner.end))
    }

    /// Appends a commit record and syncs per policy.
    pub fn append_commit(&self, rec: &LogRecord) -> Result<Lsn> {
        let lsn = self.append(rec)?;
        if self.policy == SyncPolicy::OnCommit {
            self.sync()?;
        }
        Ok(lsn)
    }

    /// Group commit: blocks until the log is durable up to at least
    /// `upto`, issuing at most one fsync for every batch of concurrently
    /// waiting committers. The first arrival becomes the *leader* and
    /// fsyncs whatever the log holds at that moment (possibly covering
    /// records staged after `upto`); arrivals while an fsync is in flight
    /// become *followers* and wait — when the leader finishes, every
    /// follower whose records the fsync covered returns without its own
    /// fsync. A no-op when the policy is [`SyncPolicy::OnCheckpoint`].
    pub fn sync_to(&self, upto: Lsn) -> Result<()> {
        if self.policy != SyncPolicy::OnCommit {
            return Ok(());
        }
        let mut gate = self.gate.lock().expect("wal gate");
        loop {
            if gate.synced_end >= upto.0 {
                return Ok(());
            }
            if gate.leader_active {
                gate = self.gate_changed.wait(gate).expect("wal gate");
                continue;
            }
            gate.leader_active = true;
            drop(gate);
            // Leader: capture the current end, then fsync *outside* both
            // locks so followers keep appending during the fsync — that
            // window is where batching comes from.
            let (file, end) = {
                let inner = self.inner.lock().expect("wal lock");
                (inner.file.clone(), inner.end)
            };
            let res = file.sync();
            let mut g = self.gate.lock().expect("wal gate");
            g.leader_active = false;
            if res.is_ok() {
                g.synced_end = g.synced_end.max(end);
                self.obs.fsyncs.inc();
                self.obs
                    .group_size
                    .record(self.unsynced.swap(0, Ordering::Relaxed));
            }
            drop(g);
            self.gate_changed.notify_all();
            res?;
            gate = self.gate.lock().expect("wal gate");
        }
    }

    /// Forces the log to stable storage (unconditional fsync).
    pub fn sync(&self) -> Result<()> {
        let (file, end) = {
            let inner = self.inner.lock().expect("wal lock");
            (inner.file.clone(), inner.end)
        };
        file.sync()?;
        let mut gate = self.gate.lock().expect("wal gate");
        gate.synced_end = gate.synced_end.max(end);
        drop(gate);
        self.gate_changed.notify_all();
        self.obs.fsyncs.inc();
        self.obs
            .group_size
            .record(self.unsynced.swap(0, Ordering::Relaxed));
        Ok(())
    }

    /// The log's current epoch (changes on every [`Wal::reset_with`]).
    pub fn epoch(&self) -> u64 {
        self.inner.lock().expect("wal lock").epoch
    }

    /// The *replicable* horizon: how far a subscriber may safely be
    /// streamed. Under [`SyncPolicy::OnCommit`] only fsynced bytes ship —
    /// a power cut must never leave a replica ahead of its leader. Under
    /// [`SyncPolicy::OnCheckpoint`] the whole in-memory tail ships (the
    /// leader has already accepted losing it on power failure).
    pub fn durable_len(&self) -> u64 {
        match self.policy {
            SyncPolicy::OnCommit => self.gate.lock().expect("wal gate").synced_end,
            SyncPolicy::OnCheckpoint => self.len(),
        }
    }

    /// Reads every valid record from the start of the log. A torn tail
    /// (bad length or CRC) ends the scan cleanly. Thin wrapper over
    /// [`Wal::read_from`]; prefer the cursor for anything large.
    pub fn read_all(&self) -> Result<Vec<(Lsn, LogRecord)>> {
        let mut out = Vec::new();
        let mut cursor = self.read_from(Lsn(0))?;
        while let Some(item) = cursor.next_record()? {
            out.push(item);
        }
        Ok(out)
    }

    /// Opens an incremental cursor over the valid records starting at
    /// byte offset `from` (must be a frame boundary previously handed out
    /// as an LSN, or 0). The cursor snapshots the log length at creation;
    /// records appended later are not observed. Reads the log in bounded
    /// chunks — memory use is O(largest record), not O(log).
    pub fn read_from(&self, from: Lsn) -> Result<WalCursor> {
        let inner = self.inner.lock().expect("wal lock");
        Ok(WalCursor::new(inner.file.clone(), from.0, inner.end))
    }

    /// Reads up to `max_bytes` of raw, CRC-validated frames for a
    /// replication subscriber positioned at `from`. Only *whole* frames
    /// within the durable horizon are returned (the first frame is
    /// included even when it alone exceeds `max_bytes`, so one oversized
    /// record cannot stall the stream). An empty `bytes` means the
    /// subscriber is caught up — or, if `from` lies beyond the durable
    /// end, that its position belongs to a different epoch.
    pub fn read_chunk(&self, from: Lsn, max_bytes: usize) -> Result<WalChunk> {
        loop {
            let (file, epoch) = {
                let inner = self.inner.lock().expect("wal lock");
                (inner.file.clone(), inner.epoch)
            };
            let durable = self.durable_len();
            let mut chunk = WalChunk {
                epoch,
                start: from,
                bytes: Vec::new(),
            };
            let mut pos = from.0;
            while pos + 8 <= durable {
                let mut header = [0u8; 8];
                file.read_at(&mut header, pos)?;
                let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as u64;
                let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
                if pos + 8 + len > durable {
                    break;
                }
                let mut payload = vec![0u8; len as usize];
                file.read_at(&mut payload, pos + 8)?;
                if crc32c(&payload) != crc {
                    break;
                }
                chunk.bytes.extend_from_slice(&header);
                chunk.bytes.extend_from_slice(&payload);
                pos += 8 + len;
                if chunk.bytes.len() >= max_bytes {
                    break;
                }
            }
            // A checkpoint truncation may have swept the log out from under
            // this read (epoch capture → truncate → stale bytes). Retry
            // until the epoch was stable across the whole read; only then
            // are the bytes guaranteed to belong to `epoch`.
            if self.inner.lock().expect("wal lock").epoch == epoch {
                return Ok(chunk);
            }
        }
    }

    /// Truncates the log to empty, then appends `first` (typically a
    /// checkpoint record) and syncs. The caller must have flushed and
    /// synced all data files *before* calling this. Draws a fresh epoch:
    /// pre-truncation LSNs are meaningless afterwards.
    pub fn reset_with(&self, first: &LogRecord) -> Result<Lsn> {
        {
            let mut inner = self.inner.lock().expect("wal lock");
            inner.file.set_len(0)?;
            inner.end = 0;
            inner.epoch = fresh_epoch();
            // The durable horizon moved backwards with the truncation; a
            // stale `synced_end` would let `sync_to` skip a needed fsync.
            self.gate.lock().expect("wal gate").synced_end = 0;
        }
        let lsn = self.append(first)?;
        self.sync()?;
        Ok(lsn)
    }
}

/// Streaming decoder over a snapshot of one log's valid prefix. Produced
/// by [`Wal::read_from`]; also usable over raw replicated bytes via
/// [`decode_frames`].
pub struct WalCursor {
    file: Arc<dyn VfsFile>,
    /// Absolute offset of the next unparsed byte.
    pos: u64,
    /// Log length snapshot taken at cursor creation.
    end: u64,
    /// Read-ahead buffer; `buf[..filled]` holds file bytes starting at
    /// absolute offset `buf_start`.
    buf: Vec<u8>,
    buf_start: u64,
    filled: usize,
}

impl WalCursor {
    /// Bytes fetched from the file per read-ahead.
    const CHUNK: usize = 64 << 10;

    fn new(file: Arc<dyn VfsFile>, pos: u64, end: u64) -> WalCursor {
        WalCursor {
            file,
            pos,
            end,
            buf: Vec::new(),
            buf_start: pos,
            filled: 0,
        }
    }

    /// The LSN of the next record [`WalCursor::next_record`] would return —
    /// after the final record, one past the last valid frame.
    pub fn position(&self) -> Lsn {
        Lsn(self.pos)
    }

    /// Ensures at least `need` bytes starting at `self.pos` are buffered,
    /// or as many as the snapshot end allows.
    fn fill(&mut self, need: usize) -> Result<usize> {
        let have = (self.buf_start + self.filled as u64).saturating_sub(self.pos) as usize;
        if have >= need {
            return Ok(have);
        }
        // Discard consumed bytes, then read ahead from the file.
        let offset = (self.pos - self.buf_start) as usize;
        self.buf.drain(..offset);
        self.filled -= offset;
        self.buf_start = self.pos;
        let want = need.max(Self::CHUNK);
        let avail = (self.end - self.buf_start) as usize;
        let target = want.min(avail);
        if target > self.filled {
            let at = self.buf_start + self.filled as u64;
            let old_len = self.buf.len();
            self.buf.resize(old_len.max(target), 0);
            self.file.read_at(&mut self.buf[self.filled..target], at)?;
            self.filled = target;
        }
        Ok(self.filled)
    }

    /// Decodes the next valid record, or `None` at the end of the valid
    /// prefix (a torn or corrupt frame ends the scan cleanly, exactly as
    /// the materializing scan did).
    pub fn next_record(&mut self) -> Result<Option<(Lsn, LogRecord)>> {
        if self.fill(8)? < 8 {
            return Ok(None);
        }
        let base = (self.pos - self.buf_start) as usize;
        let len =
            u32::from_le_bytes(self.buf[base..base + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(self.buf[base + 4..base + 8].try_into().expect("4 bytes"));
        if self.fill(8 + len)? < 8 + len {
            return Ok(None); // torn frame
        }
        let base = (self.pos - self.buf_start) as usize;
        let payload = &self.buf[base + 8..base + 8 + len];
        if crc32c(payload) != crc {
            return Ok(None); // corrupt frame — treat as end of log
        }
        match LogRecord::decode(payload) {
            Ok(rec) => {
                let lsn = Lsn(self.pos);
                self.pos += 8 + len as u64;
                Ok(Some((lsn, rec)))
            }
            Err(_) => Ok(None),
        }
    }
}

/// Decodes raw frame bytes (as shipped in a [`WalChunk`]) into records,
/// returning each record with its LSN (`base` + offset within `bytes`).
/// Errors on a torn or corrupt frame: unlike a log *file* tail, replicated
/// bytes passed CRC validation on the leader, so damage here means the
/// transport or the subscriber's bookkeeping is broken.
pub fn decode_frames(base: Lsn, bytes: &[u8]) -> Result<Vec<(Lsn, LogRecord)>> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        if pos + 8 > bytes.len() {
            return Err(tcom_kernel::Error::corruption(
                "replicated WAL chunk ends mid-header",
            ));
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if pos + 8 + len > bytes.len() {
            return Err(tcom_kernel::Error::corruption(
                "replicated WAL chunk ends mid-frame",
            ));
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32c(payload) != crc {
            return Err(tcom_kernel::Error::corruption(
                "replicated WAL frame failed CRC",
            ));
        }
        out.push((Lsn(base.0 + pos as u64), LogRecord::decode(payload)?));
        pos += 8 + len;
    }
    Ok(out)
}

fn encode_frame(rec: &LogRecord) -> Vec<u8> {
    let payload = rec.encode();
    let mut frame = Vec::with_capacity(payload.len() + 8);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32c(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Scans the file from the start in bounded chunks, returning the byte
/// offset one past the last valid frame — without materializing records.
fn scan_valid_end(file: &Arc<dyn VfsFile>) -> Result<u64> {
    let file_len = file.len()?;
    let mut cursor = WalCursor::new(file.clone(), 0, file_len);
    while cursor.next_record()?.is_some() {}
    Ok(cursor.position().0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::OpenOptions;
    use std::io::Write;
    use tcom_kernel::{TimePoint, TxnId};

    fn tmplog(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("tcom-wal-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn append_read_roundtrip() {
        let path = tmplog("rt");
        let wal = Wal::open(&path, SyncPolicy::OnCommit).unwrap();
        assert!(wal.is_empty());
        let recs = vec![
            LogRecord::Begin { txn: TxnId(1) },
            LogRecord::CloseVersion {
                txn: TxnId(1),
                atom: tcom_kernel::AtomId::new(tcom_kernel::AtomTypeId(0), tcom_kernel::AtomNo(5)),
                vt_start: TimePoint(0),
                tt_end: TimePoint(9),
            },
            LogRecord::Commit { txn: TxnId(1) },
        ];
        let mut lsns = Vec::new();
        for r in &recs {
            lsns.push(wal.append(r).unwrap());
        }
        wal.sync().unwrap();
        let back = wal.read_all().unwrap();
        assert_eq!(back.len(), 3);
        for ((lsn, rec), (want_lsn, want_rec)) in back.iter().zip(lsns.iter().zip(&recs)) {
            assert_eq!(lsn, want_lsn);
            assert_eq!(rec, want_rec);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn survives_reopen() {
        let path = tmplog("reopen");
        {
            let wal = Wal::open(&path, SyncPolicy::OnCommit).unwrap();
            wal.append(&LogRecord::Begin { txn: TxnId(9) }).unwrap();
            wal.append_commit(&LogRecord::Commit { txn: TxnId(9) })
                .unwrap();
        }
        let wal = Wal::open(&path, SyncPolicy::OnCommit).unwrap();
        let back = wal.read_all().unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[1].1, LogRecord::Commit { txn: TxnId(9) });
        // Appends continue after the existing records.
        wal.append(&LogRecord::Begin { txn: TxnId(10) }).unwrap();
        assert_eq!(wal.read_all().unwrap().len(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_dropped() {
        let path = tmplog("torn");
        {
            let wal = Wal::open(&path, SyncPolicy::OnCommit).unwrap();
            wal.append(&LogRecord::Begin { txn: TxnId(1) }).unwrap();
            wal.append(&LogRecord::Commit { txn: TxnId(1) }).unwrap();
            wal.sync().unwrap();
        }
        // Simulate a crash mid-append: garbage half-frame at the end.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[200, 0, 0, 0, 0xDE, 0xAD]).unwrap();
        }
        let wal = Wal::open(&path, SyncPolicy::OnCommit).unwrap();
        let back = wal.read_all().unwrap();
        assert_eq!(back.len(), 2, "torn tail must not surface");
        // New appends land cleanly after the valid prefix.
        wal.append(&LogRecord::Begin { txn: TxnId(2) }).unwrap();
        assert_eq!(wal.read_all().unwrap().len(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_middle_frame_truncates_from_there() {
        let path = tmplog("corrupt");
        {
            let wal = Wal::open(&path, SyncPolicy::OnCommit).unwrap();
            for i in 0..5 {
                wal.append(&LogRecord::Begin { txn: TxnId(i) }).unwrap();
            }
            wal.sync().unwrap();
        }
        // Flip a byte in the middle of the file.
        {
            let data = std::fs::read(&path).unwrap();
            let mut data = data;
            let mid = data.len() / 2;
            data[mid] ^= 0x55;
            std::fs::write(&path, &data).unwrap();
        }
        let wal = Wal::open(&path, SyncPolicy::OnCommit).unwrap();
        let back = wal.read_all().unwrap();
        assert!(back.len() < 5, "records after the corruption are dropped");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reset_with_checkpoint() {
        let path = tmplog("reset");
        let wal = Wal::open(&path, SyncPolicy::OnCheckpoint).unwrap();
        for i in 0..100 {
            wal.append(&LogRecord::Begin { txn: TxnId(i) }).unwrap();
        }
        let before = wal.len();
        wal.reset_with(&LogRecord::Checkpoint {
            clock: TimePoint(55),
            next_atom_nos: vec![(0, 10)],
        })
        .unwrap();
        assert!(wal.len() < before);
        let back = wal.read_all().unwrap();
        assert_eq!(back.len(), 1);
        assert!(matches!(
            back[0].1,
            LogRecord::Checkpoint {
                clock: TimePoint(55),
                ..
            }
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn append_all_matches_sequential_appends() {
        let p1 = tmplog("batch-a");
        let p2 = tmplog("batch-b");
        let recs: Vec<LogRecord> = (0..5).map(|i| LogRecord::Begin { txn: TxnId(i) }).collect();
        let w1 = Wal::open(&p1, SyncPolicy::OnCommit).unwrap();
        let end = w1.append_all(&recs).unwrap();
        assert_eq!(end.0, w1.len());
        let w2 = Wal::open(&p2, SyncPolicy::OnCommit).unwrap();
        for r in &recs {
            w2.append(r).unwrap();
        }
        let a: Vec<_> = w1.read_all().unwrap();
        let b: Vec<_> = w2.read_all().unwrap();
        assert_eq!(a, b, "batched and sequential appends must be identical");
        let _ = std::fs::remove_file(&p1);
        let _ = std::fs::remove_file(&p2);
    }

    #[test]
    fn sync_to_is_single_fsync_uncontended() {
        let path = tmplog("gate");
        let wal = Wal::open(&path, SyncPolicy::OnCommit).unwrap();
        let end = wal
            .append_all(&[
                LogRecord::Begin { txn: TxnId(1) },
                LogRecord::Commit { txn: TxnId(1) },
            ])
            .unwrap();
        wal.sync_to(end).unwrap();
        assert_eq!(wal.obs().fsyncs.get(), 1);
        // Already durable up to `end`: no further fsync.
        wal.sync_to(end).unwrap();
        assert_eq!(wal.obs().fsyncs.get(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sync_to_after_reset_refsyncs() {
        let path = tmplog("gate-reset");
        let wal = Wal::open(&path, SyncPolicy::OnCommit).unwrap();
        let end = wal
            .append_all(&[LogRecord::Begin { txn: TxnId(1) }])
            .unwrap();
        wal.sync_to(end).unwrap();
        wal.reset_with(&LogRecord::Checkpoint {
            clock: TimePoint(1),
            next_atom_nos: vec![],
        })
        .unwrap();
        let fsyncs = wal.obs().fsyncs.get();
        // The new tail is shorter than the pre-reset durable horizon; a
        // stale gate would wrongly skip this fsync.
        let end = wal
            .append_all(&[LogRecord::Begin { txn: TxnId(2) }])
            .unwrap();
        wal.sync_to(end).unwrap();
        assert_eq!(wal.obs().fsyncs.get(), fsyncs + 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cursor_matches_read_all_and_resumes_mid_log() {
        let path = tmplog("cursor");
        let wal = Wal::open(&path, SyncPolicy::OnCommit).unwrap();
        let recs: Vec<LogRecord> = (0..50)
            .map(|i| LogRecord::Begin { txn: TxnId(i) })
            .collect();
        let mut lsns = Vec::new();
        for r in &recs {
            lsns.push(wal.append(r).unwrap());
        }
        wal.sync().unwrap();
        let all = wal.read_all().unwrap();
        assert_eq!(all.len(), 50);
        // Resume from the LSN of record 30: the cursor yields the suffix.
        let mut cursor = wal.read_from(lsns[30]).unwrap();
        let mut suffix = Vec::new();
        while let Some(item) = cursor.next_record().unwrap() {
            suffix.push(item);
        }
        assert_eq!(suffix, all[30..].to_vec());
        assert_eq!(cursor.position().0, wal.len());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cursor_snapshots_end_at_creation() {
        let path = tmplog("cursor-snap");
        let wal = Wal::open(&path, SyncPolicy::OnCommit).unwrap();
        wal.append(&LogRecord::Begin { txn: TxnId(1) }).unwrap();
        let mut cursor = wal.read_from(Lsn(0)).unwrap();
        wal.append(&LogRecord::Begin { txn: TxnId(2) }).unwrap();
        assert!(cursor.next_record().unwrap().is_some());
        assert!(
            cursor.next_record().unwrap().is_none(),
            "records appended after cursor creation must not be observed"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn read_chunk_ships_only_durable_whole_frames() {
        let path = tmplog("chunk");
        let wal = Wal::open(&path, SyncPolicy::OnCommit).unwrap();
        let recs: Vec<LogRecord> = (0..10)
            .map(|i| LogRecord::Begin { txn: TxnId(i) })
            .collect();
        let end = wal.append_all(&recs[..6]).unwrap();
        wal.sync_to(end).unwrap();
        // Unsynced tail: must not ship under OnCommit.
        wal.append_all(&recs[6..]).unwrap();
        let chunk = wal.read_chunk(Lsn(0), usize::MAX).unwrap();
        let decoded = decode_frames(chunk.start, &chunk.bytes).unwrap();
        assert_eq!(
            decoded.iter().map(|(_, r)| r.clone()).collect::<Vec<_>>(),
            recs[..6].to_vec(),
            "only the fsynced prefix is replicable"
        );
        // A tiny max_bytes still ships at least one whole frame.
        let small = wal.read_chunk(Lsn(0), 1).unwrap();
        let one = decode_frames(small.start, &small.bytes).unwrap();
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].1, recs[0]);
        // Resuming from the end of the durable prefix yields nothing.
        let caught_up = wal.read_chunk(Lsn(end.0), usize::MAX).unwrap();
        assert!(caught_up.bytes.is_empty());
        assert_eq!(caught_up.epoch, wal.epoch());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn epoch_changes_on_reset_but_not_reopen_resume() {
        let path = tmplog("epoch");
        let wal = Wal::open(&path, SyncPolicy::OnCommit).unwrap();
        let e1 = wal.epoch();
        wal.append(&LogRecord::Begin { txn: TxnId(1) }).unwrap();
        wal.reset_with(&LogRecord::Checkpoint {
            clock: TimePoint(3),
            next_atom_nos: vec![],
        })
        .unwrap();
        let e2 = wal.epoch();
        assert_ne!(
            e1, e2,
            "truncation must invalidate old LSNs via a fresh epoch"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn decode_frames_rejects_damage() {
        let path = tmplog("decode-damage");
        let wal = Wal::open(&path, SyncPolicy::OnCommit).unwrap();
        wal.append(&LogRecord::Begin { txn: TxnId(1) }).unwrap();
        wal.sync().unwrap();
        let chunk = wal.read_chunk(Lsn(0), usize::MAX).unwrap();
        // Truncated mid-frame.
        assert!(decode_frames(Lsn(0), &chunk.bytes[..chunk.bytes.len() - 1]).is_err());
        // Flipped payload byte.
        let mut bad = chunk.bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        assert!(decode_frames(Lsn(0), &bad).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn lsn_is_byte_offset() {
        let path = tmplog("lsn");
        let wal = Wal::open(&path, SyncPolicy::OnCommit).unwrap();
        let a = wal.append(&LogRecord::Begin { txn: TxnId(1) }).unwrap();
        let b = wal.append(&LogRecord::Begin { txn: TxnId(2) }).unwrap();
        assert_eq!(a, Lsn(0));
        assert!(b > a);
        let _ = std::fs::remove_file(&path);
    }
}
