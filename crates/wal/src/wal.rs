//! The log manager: framed appends, crash-tolerant reads, truncation.

use crate::record::LogRecord;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use tcom_kernel::codec::crc32c;
use tcom_kernel::{Lsn, Result};
use tcom_obs::{Counter, Histogram};
use tcom_storage::vfs::{StdVfs, Vfs, VfsFile};

/// When the log file is fsynced.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SyncPolicy {
    /// fsync on every commit (full durability; the default).
    OnCommit,
    /// fsync only at checkpoints (benchmarks; loses the tail on power
    /// failure but never corrupts).
    OnCheckpoint,
}

struct Inner {
    file: Arc<dyn VfsFile>,
    /// Next append offset == current log length in bytes.
    end: u64,
}

/// Group-commit durability gate (leader/follower fsync batching).
struct SyncGate {
    /// Log length known to be on stable storage.
    synced_end: u64,
    /// True while some thread is inside `file.sync()` on the gate's
    /// behalf; arriving committers become followers and wait.
    leader_active: bool,
}

/// Shared observability handles of one [`Wal`]. Cloning shares the
/// underlying cells, so the database registry can hold the same handles
/// the log increments.
#[derive(Clone, Default)]
pub struct WalObs {
    /// Records appended.
    pub appends: Counter,
    /// Frame bytes appended (payload + 8-byte header).
    pub bytes: Counter,
    /// fsyncs issued.
    pub fsyncs: Counter,
    /// Group-commit size: write batches (one per committing transaction,
    /// or one per standalone record) made durable by each fsync.
    pub group_size: Histogram,
}

/// An append-only write-ahead log.
pub struct Wal {
    inner: Mutex<Inner>,
    path: PathBuf,
    policy: SyncPolicy,
    obs: WalObs,
    /// Write batches appended since the last fsync (feeds
    /// `obs.group_size`): a batch is one `append_all` (a transaction's
    /// records) or one standalone `append`.
    unsynced: AtomicU64,
    gate: Mutex<SyncGate>,
    gate_changed: Condvar,
}

impl Wal {
    /// Opens (creating if missing) the log at `path` on the real file
    /// system.
    pub fn open(path: impl AsRef<Path>, policy: SyncPolicy) -> Result<Wal> {
        Wal::open_with(&StdVfs, path, policy)
    }

    /// Opens (creating if missing) the log at `path` through `vfs`.
    ///
    /// `open` truncates the file to the last valid frame boundary so new
    /// appends never interleave with a torn tail left by a crash.
    pub fn open_with(vfs: &dyn Vfs, path: impl AsRef<Path>, policy: SyncPolicy) -> Result<Wal> {
        let path = path.as_ref().to_owned();
        let file = vfs.open(&path)?;
        // Find the end of the valid prefix.
        let valid_end = scan_valid_prefix(file.as_ref())?.1;
        if valid_end != file.len()? {
            file.set_len(valid_end)?;
        }
        Ok(Wal {
            inner: Mutex::new(Inner {
                file,
                end: valid_end,
            }),
            path,
            policy,
            obs: WalObs::default(),
            unsynced: AtomicU64::new(0),
            gate: Mutex::new(SyncGate {
                // The surviving prefix was durable before the reopen.
                synced_end: valid_end,
                leader_active: false,
            }),
            gate_changed: Condvar::new(),
        })
    }

    /// The configured sync policy.
    pub fn policy(&self) -> SyncPolicy {
        self.policy
    }

    /// The log's observability handles (clone to register them).
    pub fn obs(&self) -> &WalObs {
        &self.obs
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current log length in bytes.
    pub fn len(&self) -> u64 {
        self.inner.lock().expect("wal lock").end
    }

    /// True iff the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a record, returning its LSN (byte offset of the frame).
    pub fn append(&self, rec: &LogRecord) -> Result<Lsn> {
        let frame = encode_frame(rec);
        let mut inner = self.inner.lock().expect("wal lock");
        let lsn = Lsn(inner.end);
        inner.file.write_at(&frame, inner.end)?;
        inner.end += frame.len() as u64;
        self.obs.appends.inc();
        self.obs.bytes.add(frame.len() as u64);
        self.unsynced.fetch_add(1, Ordering::Relaxed);
        Ok(lsn)
    }

    /// Appends a whole batch of records in one contiguous write under one
    /// lock acquisition, returning the log length *after* the batch — the
    /// LSN a committer hands to [`Wal::sync_to`] to make the batch
    /// durable. Concurrent `append_all` calls never interleave records.
    pub fn append_all(&self, recs: &[LogRecord]) -> Result<Lsn> {
        let mut buf = Vec::new();
        for rec in recs {
            buf.extend_from_slice(&encode_frame(rec));
        }
        let mut inner = self.inner.lock().expect("wal lock");
        inner.file.write_at(&buf, inner.end)?;
        inner.end += buf.len() as u64;
        self.obs.appends.add(recs.len() as u64);
        self.obs.bytes.add(buf.len() as u64);
        self.unsynced.fetch_add(1, Ordering::Relaxed);
        Ok(Lsn(inner.end))
    }

    /// Appends a commit record and syncs per policy.
    pub fn append_commit(&self, rec: &LogRecord) -> Result<Lsn> {
        let lsn = self.append(rec)?;
        if self.policy == SyncPolicy::OnCommit {
            self.sync()?;
        }
        Ok(lsn)
    }

    /// Group commit: blocks until the log is durable up to at least
    /// `upto`, issuing at most one fsync for every batch of concurrently
    /// waiting committers. The first arrival becomes the *leader* and
    /// fsyncs whatever the log holds at that moment (possibly covering
    /// records staged after `upto`); arrivals while an fsync is in flight
    /// become *followers* and wait — when the leader finishes, every
    /// follower whose records the fsync covered returns without its own
    /// fsync. A no-op when the policy is [`SyncPolicy::OnCheckpoint`].
    pub fn sync_to(&self, upto: Lsn) -> Result<()> {
        if self.policy != SyncPolicy::OnCommit {
            return Ok(());
        }
        let mut gate = self.gate.lock().expect("wal gate");
        loop {
            if gate.synced_end >= upto.0 {
                return Ok(());
            }
            if gate.leader_active {
                gate = self.gate_changed.wait(gate).expect("wal gate");
                continue;
            }
            gate.leader_active = true;
            drop(gate);
            // Leader: capture the current end, then fsync *outside* both
            // locks so followers keep appending during the fsync — that
            // window is where batching comes from.
            let (file, end) = {
                let inner = self.inner.lock().expect("wal lock");
                (inner.file.clone(), inner.end)
            };
            let res = file.sync();
            let mut g = self.gate.lock().expect("wal gate");
            g.leader_active = false;
            if res.is_ok() {
                g.synced_end = g.synced_end.max(end);
                self.obs.fsyncs.inc();
                self.obs
                    .group_size
                    .record(self.unsynced.swap(0, Ordering::Relaxed));
            }
            drop(g);
            self.gate_changed.notify_all();
            res?;
            gate = self.gate.lock().expect("wal gate");
        }
    }

    /// Forces the log to stable storage (unconditional fsync).
    pub fn sync(&self) -> Result<()> {
        let (file, end) = {
            let inner = self.inner.lock().expect("wal lock");
            (inner.file.clone(), inner.end)
        };
        file.sync()?;
        let mut gate = self.gate.lock().expect("wal gate");
        gate.synced_end = gate.synced_end.max(end);
        drop(gate);
        self.gate_changed.notify_all();
        self.obs.fsyncs.inc();
        self.obs
            .group_size
            .record(self.unsynced.swap(0, Ordering::Relaxed));
        Ok(())
    }

    /// Reads every valid record from the start of the log. A torn tail
    /// (bad length or CRC) ends the scan cleanly.
    pub fn read_all(&self) -> Result<Vec<(Lsn, LogRecord)>> {
        let inner = self.inner.lock().expect("wal lock");
        let (records, _) = scan_valid_prefix(inner.file.as_ref())?;
        Ok(records)
    }

    /// Truncates the log to empty, then appends `first` (typically a
    /// checkpoint record) and syncs. The caller must have flushed and
    /// synced all data files *before* calling this.
    pub fn reset_with(&self, first: &LogRecord) -> Result<Lsn> {
        {
            let mut inner = self.inner.lock().expect("wal lock");
            inner.file.set_len(0)?;
            inner.end = 0;
            // The durable horizon moved backwards with the truncation; a
            // stale `synced_end` would let `sync_to` skip a needed fsync.
            self.gate.lock().expect("wal gate").synced_end = 0;
        }
        let lsn = self.append(first)?;
        self.sync()?;
        Ok(lsn)
    }
}

fn encode_frame(rec: &LogRecord) -> Vec<u8> {
    let payload = rec.encode();
    let mut frame = Vec::with_capacity(payload.len() + 8);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32c(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Scans the file from the start, returning all valid records and the byte
/// offset one past the last valid frame.
fn scan_valid_prefix(file: &dyn VfsFile) -> Result<(Vec<(Lsn, LogRecord)>, u64)> {
    let file_len = file.len()?;
    let mut buf = vec![0u8; file_len as usize];
    file.read_at(&mut buf, 0)?;
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        if pos + 8 > buf.len() {
            break;
        }
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if pos + 8 + len > buf.len() {
            break; // torn frame
        }
        let payload = &buf[pos + 8..pos + 8 + len];
        if crc32c(payload) != crc {
            break; // corrupt frame — treat as end of log
        }
        match LogRecord::decode(payload) {
            Ok(rec) => records.push((Lsn(pos as u64), rec)),
            Err(_) => break,
        }
        pos += 8 + len;
    }
    Ok((records, pos as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::OpenOptions;
    use std::io::Write;
    use tcom_kernel::{TimePoint, TxnId};

    fn tmplog(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("tcom-wal-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn append_read_roundtrip() {
        let path = tmplog("rt");
        let wal = Wal::open(&path, SyncPolicy::OnCommit).unwrap();
        assert!(wal.is_empty());
        let recs = vec![
            LogRecord::Begin { txn: TxnId(1) },
            LogRecord::CloseVersion {
                txn: TxnId(1),
                atom: tcom_kernel::AtomId::new(tcom_kernel::AtomTypeId(0), tcom_kernel::AtomNo(5)),
                vt_start: TimePoint(0),
                tt_end: TimePoint(9),
            },
            LogRecord::Commit { txn: TxnId(1) },
        ];
        let mut lsns = Vec::new();
        for r in &recs {
            lsns.push(wal.append(r).unwrap());
        }
        wal.sync().unwrap();
        let back = wal.read_all().unwrap();
        assert_eq!(back.len(), 3);
        for ((lsn, rec), (want_lsn, want_rec)) in back.iter().zip(lsns.iter().zip(&recs)) {
            assert_eq!(lsn, want_lsn);
            assert_eq!(rec, want_rec);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn survives_reopen() {
        let path = tmplog("reopen");
        {
            let wal = Wal::open(&path, SyncPolicy::OnCommit).unwrap();
            wal.append(&LogRecord::Begin { txn: TxnId(9) }).unwrap();
            wal.append_commit(&LogRecord::Commit { txn: TxnId(9) })
                .unwrap();
        }
        let wal = Wal::open(&path, SyncPolicy::OnCommit).unwrap();
        let back = wal.read_all().unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[1].1, LogRecord::Commit { txn: TxnId(9) });
        // Appends continue after the existing records.
        wal.append(&LogRecord::Begin { txn: TxnId(10) }).unwrap();
        assert_eq!(wal.read_all().unwrap().len(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_dropped() {
        let path = tmplog("torn");
        {
            let wal = Wal::open(&path, SyncPolicy::OnCommit).unwrap();
            wal.append(&LogRecord::Begin { txn: TxnId(1) }).unwrap();
            wal.append(&LogRecord::Commit { txn: TxnId(1) }).unwrap();
            wal.sync().unwrap();
        }
        // Simulate a crash mid-append: garbage half-frame at the end.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[200, 0, 0, 0, 0xDE, 0xAD]).unwrap();
        }
        let wal = Wal::open(&path, SyncPolicy::OnCommit).unwrap();
        let back = wal.read_all().unwrap();
        assert_eq!(back.len(), 2, "torn tail must not surface");
        // New appends land cleanly after the valid prefix.
        wal.append(&LogRecord::Begin { txn: TxnId(2) }).unwrap();
        assert_eq!(wal.read_all().unwrap().len(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_middle_frame_truncates_from_there() {
        let path = tmplog("corrupt");
        {
            let wal = Wal::open(&path, SyncPolicy::OnCommit).unwrap();
            for i in 0..5 {
                wal.append(&LogRecord::Begin { txn: TxnId(i) }).unwrap();
            }
            wal.sync().unwrap();
        }
        // Flip a byte in the middle of the file.
        {
            let data = std::fs::read(&path).unwrap();
            let mut data = data;
            let mid = data.len() / 2;
            data[mid] ^= 0x55;
            std::fs::write(&path, &data).unwrap();
        }
        let wal = Wal::open(&path, SyncPolicy::OnCommit).unwrap();
        let back = wal.read_all().unwrap();
        assert!(back.len() < 5, "records after the corruption are dropped");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reset_with_checkpoint() {
        let path = tmplog("reset");
        let wal = Wal::open(&path, SyncPolicy::OnCheckpoint).unwrap();
        for i in 0..100 {
            wal.append(&LogRecord::Begin { txn: TxnId(i) }).unwrap();
        }
        let before = wal.len();
        wal.reset_with(&LogRecord::Checkpoint {
            clock: TimePoint(55),
            next_atom_nos: vec![(0, 10)],
        })
        .unwrap();
        assert!(wal.len() < before);
        let back = wal.read_all().unwrap();
        assert_eq!(back.len(), 1);
        assert!(matches!(
            back[0].1,
            LogRecord::Checkpoint {
                clock: TimePoint(55),
                ..
            }
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn append_all_matches_sequential_appends() {
        let p1 = tmplog("batch-a");
        let p2 = tmplog("batch-b");
        let recs: Vec<LogRecord> = (0..5).map(|i| LogRecord::Begin { txn: TxnId(i) }).collect();
        let w1 = Wal::open(&p1, SyncPolicy::OnCommit).unwrap();
        let end = w1.append_all(&recs).unwrap();
        assert_eq!(end.0, w1.len());
        let w2 = Wal::open(&p2, SyncPolicy::OnCommit).unwrap();
        for r in &recs {
            w2.append(r).unwrap();
        }
        let a: Vec<_> = w1.read_all().unwrap();
        let b: Vec<_> = w2.read_all().unwrap();
        assert_eq!(a, b, "batched and sequential appends must be identical");
        let _ = std::fs::remove_file(&p1);
        let _ = std::fs::remove_file(&p2);
    }

    #[test]
    fn sync_to_is_single_fsync_uncontended() {
        let path = tmplog("gate");
        let wal = Wal::open(&path, SyncPolicy::OnCommit).unwrap();
        let end = wal
            .append_all(&[
                LogRecord::Begin { txn: TxnId(1) },
                LogRecord::Commit { txn: TxnId(1) },
            ])
            .unwrap();
        wal.sync_to(end).unwrap();
        assert_eq!(wal.obs().fsyncs.get(), 1);
        // Already durable up to `end`: no further fsync.
        wal.sync_to(end).unwrap();
        assert_eq!(wal.obs().fsyncs.get(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sync_to_after_reset_refsyncs() {
        let path = tmplog("gate-reset");
        let wal = Wal::open(&path, SyncPolicy::OnCommit).unwrap();
        let end = wal
            .append_all(&[LogRecord::Begin { txn: TxnId(1) }])
            .unwrap();
        wal.sync_to(end).unwrap();
        wal.reset_with(&LogRecord::Checkpoint {
            clock: TimePoint(1),
            next_atom_nos: vec![],
        })
        .unwrap();
        let fsyncs = wal.obs().fsyncs.get();
        // The new tail is shorter than the pre-reset durable horizon; a
        // stale gate would wrongly skip this fsync.
        let end = wal
            .append_all(&[LogRecord::Begin { txn: TxnId(2) }])
            .unwrap();
        wal.sync_to(end).unwrap();
        assert_eq!(wal.obs().fsyncs.get(), fsyncs + 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn lsn_is_byte_offset() {
        let path = tmplog("lsn");
        let wal = Wal::open(&path, SyncPolicy::OnCommit).unwrap();
        let a = wal.append(&LogRecord::Begin { txn: TxnId(1) }).unwrap();
        let b = wal.append(&LogRecord::Begin { txn: TxnId(2) }).unwrap();
        assert_eq!(a, Lsn(0));
        assert!(b > a);
        let _ = std::fs::remove_file(&path);
    }
}
