//! # tcom-wal
//!
//! Write-ahead logging and recovery support for the tcom engine.
//!
//! The engine uses **logical, redo-only** logging: every committed
//! transaction's mutation primitives (`InsertVersion`, `CloseVersion`) are
//! appended to the log before its commit record. Recovery replays the
//! primitives of committed transactions in log order; replay is
//! **idempotent** at the engine level (an already-applied insert is
//! detected by its `(atom, vt, tt_start)` stamp, and closing an
//! already-closed version is a no-op), so the buffer manager may steal
//! (write back dirty pages) at any time without undo.
//!
//! Checkpointing truncates the log after flushing and fsyncing all data
//! files; the checkpoint record carries the engine clock and per-type atom
//! counters so they survive without a separate metadata file.
//!
//! Format: a sequence of `[len: u32][crc32c: u32][payload]` frames. A
//! torn final frame (crash mid-append) fails its CRC or length check and
//! cleanly ends recovery — this is exercised by tests.

#![warn(missing_docs)]

pub mod record;
pub mod wal;

pub use record::LogRecord;
pub use wal::{decode_frames, SyncPolicy, Wal, WalChunk, WalCursor, WalObs};
