//! WAL fault coverage: log-record codec round-trips under arbitrary
//! inputs, and exhaustive torn-tail recovery — the log is cut at *every*
//! byte boundary and must always reopen to exactly the whole frames that
//! survived the cut.

use proptest::prelude::*;
use tcom_kernel::{AtomId, AtomNo, AtomTypeId, Interval, TimePoint, Tuple, TxnId, Value};
use tcom_wal::{LogRecord, SyncPolicy, Wal};

fn interval(a: u64, b: u64) -> Interval {
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    Interval::new(TimePoint(lo), TimePoint(hi))
        .unwrap_or_else(|| Interval::from_start(TimePoint(lo)))
}

fn record_strategy() -> impl Strategy<Value = LogRecord> {
    let atom =
        (0u32..16, 0u64..10_000).prop_map(|(ty, no)| AtomId::new(AtomTypeId(ty), AtomNo(no)));
    prop_oneof![
        1 => any::<u64>().prop_map(|t| LogRecord::Begin { txn: TxnId(t) }),
        1 => any::<u64>().prop_map(|t| LogRecord::Commit { txn: TxnId(t) }),
        1 => any::<u64>().prop_map(|t| LogRecord::Abort { txn: TxnId(t) }),
        3 => (any::<u64>(), atom.clone(), 0u64..500, 0u64..500, 0u64..1000, any::<i64>(), "[a-z]{0,12}")
            .prop_map(|(t, atom, a, b, tt, v, s)| LogRecord::InsertVersion {
                txn: TxnId(t),
                atom,
                vt: interval(a, b.wrapping_add(1)),
                tt_start: TimePoint(tt),
                tuple: Tuple::new(vec![Value::Int(v), Value::from(s.as_str())]),
            }),
        2 => (any::<u64>(), atom, 0u64..500, 0u64..1000)
            .prop_map(|(t, atom, vs, tte)| LogRecord::CloseVersion {
                txn: TxnId(t),
                atom,
                vt_start: TimePoint(vs),
                tt_end: TimePoint(tte),
            }),
        1 => (0u64..10_000, (0u32..8, 0u64..1_000).prop_map(|p| vec![p, (p.0 + 1, p.1 * 2)]))
            .prop_map(|(c, nos)| LogRecord::Checkpoint {
                clock: TimePoint(c),
                next_atom_nos: nos,
            }),
    ]
}

proptest! {
    /// decode(encode(r)) == r for arbitrary records of every variant.
    #[test]
    fn record_codec_roundtrip(rec in record_strategy()) {
        let payload = rec.encode();
        let back = LogRecord::decode(&payload).expect("decode");
        prop_assert_eq!(back, rec);
    }
}

/// Cut the log at every byte boundary; every cut must reopen cleanly to
/// exactly the frames wholly contained in (and CRC-valid within) the
/// surviving prefix, and the file must be truncated to that frame
/// boundary so later appends never interleave with torn bytes.
#[test]
fn torn_tail_recovers_at_every_byte_boundary() {
    let base = std::env::temp_dir().join(format!("tcom-walcut-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();

    // Records of assorted sizes, so frame boundaries are irregular.
    let recs = vec![
        LogRecord::Begin { txn: TxnId(1) },
        LogRecord::InsertVersion {
            txn: TxnId(1),
            atom: AtomId::new(AtomTypeId(0), AtomNo(7)),
            vt: interval(3, 42),
            tt_start: TimePoint(10),
            tuple: Tuple::new(vec![Value::Int(-5), Value::from("payload bytes")]),
        },
        LogRecord::CloseVersion {
            txn: TxnId(1),
            atom: AtomId::new(AtomTypeId(0), AtomNo(7)),
            vt_start: TimePoint(3),
            tt_end: TimePoint(10),
        },
        LogRecord::Commit { txn: TxnId(1) },
        LogRecord::Checkpoint {
            clock: TimePoint(11),
            next_atom_nos: vec![(0, 8), (1, 0)],
        },
    ];

    let full = base.join("full.wal");
    {
        let wal = Wal::open(&full, SyncPolicy::OnCommit).unwrap();
        for r in &recs {
            wal.append(r).unwrap();
        }
        wal.sync().unwrap();
    }
    let bytes = std::fs::read(&full).unwrap();

    // Frame boundaries: byte offsets where a whole number of frames end.
    let mut boundaries = vec![0u64];
    let mut pos = 0usize;
    while pos + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 8 + len;
        boundaries.push(pos as u64);
    }
    assert_eq!(pos, bytes.len(), "frame scan must consume the file exactly");
    assert_eq!(boundaries.len(), recs.len() + 1);

    let cut_path = base.join("cut.wal");
    for cut in 0..=bytes.len() {
        std::fs::write(&cut_path, &bytes[..cut]).unwrap();
        let wal = Wal::open(&cut_path, SyncPolicy::OnCommit).unwrap();
        let back = wal.read_all().unwrap();
        let want = boundaries
            .iter()
            .filter(|&&b| b > 0 && b <= cut as u64)
            .count();
        assert_eq!(back.len(), want, "cut at byte {cut}");
        for ((_, got), exp) in back.iter().zip(&recs) {
            assert_eq!(got, exp, "cut at byte {cut}");
        }
        let valid_end = *boundaries
            .iter()
            .filter(|&&b| b <= cut as u64)
            .max()
            .unwrap();
        assert_eq!(
            wal.len(),
            valid_end,
            "cut at byte {cut}: torn bytes must be dropped"
        );
        assert_eq!(
            std::fs::metadata(&cut_path).unwrap().len(),
            valid_end,
            "cut at byte {cut}: file truncated to the last whole frame"
        );
        // The reopened log accepts appends cleanly after any cut.
        wal.append(&LogRecord::Begin { txn: TxnId(99) }).unwrap();
        assert_eq!(wal.read_all().unwrap().len(), want + 1, "cut at byte {cut}");
    }

    let _ = std::fs::remove_dir_all(&base);
}
