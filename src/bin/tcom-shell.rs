//! `tcom-shell` — an interactive TQL shell over a tcom database.
//!
//! ```text
//! cargo run --bin tcom-shell -- /path/to/db [--store chain|delta|split]
//! ```
//!
//! Statements end with `;` and may span lines. Meta commands:
//!
//! ```text
//! .help                 this text
//! .types                list atom types and attributes
//! .molecules            list molecule types
//! .stats                storage + buffer statistics
//! .metrics              full metrics-registry exposition
//! .checkpoint           flush everything and truncate the WAL
//! .now                  current transaction-time clock
//! .quit                 exit (clean shutdown checkpoint)
//! ```

use std::io::{BufRead, Write};
use tcom::prelude::*;
use tcom_query::{run_statement, StatementOutput};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("usage: tcom-shell <db-dir> [--store chain|delta|split]");
        std::process::exit(2);
    };
    let mut config = DbConfig::default();
    if let Some(i) = args.iter().position(|a| a == "--store") {
        config = config.store_kind(match args.get(i + 1).map(String::as_str) {
            Some("chain") => StoreKind::Chain,
            Some("delta") => StoreKind::Delta,
            Some("split") | None => StoreKind::Split,
            Some(other) => {
                eprintln!("unknown store kind '{other}'");
                std::process::exit(2);
            }
        });
    }
    let db = match Database::open(path, config) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("cannot open {path}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "tcom shell — {} (store: {}, clock: {})",
        path,
        db.config().store_kind,
        db.now()
    );
    println!("statements end with ';' — try .help");

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("tql> ");
        } else {
            print!("...> ");
        }
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('.') {
            if !meta_command(&db, trimmed) {
                break;
            }
            continue;
        }
        buffer.push_str(&line);
        if !buffer.trim_end().ends_with(';') {
            continue;
        }
        let stmt = buffer.trim().trim_end_matches(';').to_owned();
        buffer.clear();
        if stmt.is_empty() {
            continue;
        }
        match run_statement(&db, &stmt) {
            Ok(out) => print_output(out),
            Err(e) => eprintln!("error: {e}"),
        }
    }
    println!("bye");
}

/// Returns `false` to exit the shell.
fn meta_command(db: &Database, cmd: &str) -> bool {
    match cmd {
        ".quit" | ".exit" | ".q" => return false,
        ".help" => {
            println!(
                ".types .molecules .stats .metrics .checkpoint .now .quit\n\
                 SELECT … | EXPLAIN ANALYZE SELECT … | CREATE TYPE … |\n\
                 CREATE MOLECULE … | INSERT INTO … | UPDATE … SET … |\n\
                 DELETE FROM … (end with ';')"
            );
        }
        ".types" => db.with_catalog(|c| {
            for t in c.atom_types() {
                println!("type {} (#{})", t.name, t.id.0);
                for (i, a) in t.attrs.iter().enumerate() {
                    println!(
                        "  {i}: {} {}{}{}",
                        a.name,
                        a.ty,
                        if a.not_null { " NOT NULL" } else { "" },
                        if a.indexed { " INDEXED" } else { "" },
                    );
                }
            }
        }),
        ".molecules" => db.with_catalog(|c| {
            for m in c.molecule_types() {
                let root = c
                    .atom_type(m.root)
                    .map(|t| t.name.clone())
                    .unwrap_or_default();
                println!("molecule {} (root {root}, {} edges)", m.name, m.edges.len());
            }
        }),
        ".stats" => {
            match db.all_type_stats() {
                Ok(stats) => {
                    for ts in stats {
                        let st = &ts.store;
                        println!(
                            "{} ({}): {} atoms, {} versions ({} open, {:.0}%), \
                             depth mean {:.1} max {}, {} pages ({} resident, {:.0}%), \
                             {} bytes, {} time-index entries, {} changes since snapshot",
                            ts.name,
                            ts.kind,
                            st.atoms,
                            st.versions,
                            st.open_versions,
                            ts.open_ratio() * 100.0,
                            ts.mean_depth(),
                            st.max_depth,
                            st.heap_pages,
                            ts.resident_pages,
                            ts.residency() * 100.0,
                            st.record_bytes,
                            st.time_entries,
                            ts.changes_since,
                        );
                    }
                }
                Err(e) => eprintln!("error: {e}"),
            }
            let b = db.buffer_stats();
            println!(
                "buffer: {} hits, {} misses, {} evictions; wal: {} bytes",
                b.hits,
                b.misses,
                b.evictions,
                db.wal_len()
            );
        }
        ".metrics" => print!("{}", db.metrics().render_text()),
        ".checkpoint" => match db.checkpoint() {
            Ok(()) => println!("checkpointed"),
            Err(e) => eprintln!("error: {e}"),
        },
        ".now" => println!("{}", db.now()),
        other => eprintln!("unknown command {other} — try .help"),
    }
    true
}

fn print_output(out: StatementOutput) {
    match out {
        StatementOutput::Query(QueryOutput::Rows { columns, rows }) => {
            println!("{} | vt | tt", columns.join(" | "));
            for r in &rows {
                let vals: Vec<String> = r.values.iter().map(|v| v.to_string()).collect();
                println!("{} | {} | {}", vals.join(" | "), r.vt, r.tt);
            }
            println!(
                "({} row{})",
                rows.len(),
                if rows.len() == 1 { "" } else { "s" }
            );
        }
        StatementOutput::Query(QueryOutput::Molecules(ms)) => {
            for m in &ms {
                println!("molecule @{} ({} atoms):", m.root.id, m.size());
                print_mat_atom(&m.root, 1);
            }
            println!(
                "({} molecule{})",
                ms.len(),
                if ms.len() == 1 { "" } else { "s" }
            );
        }
        StatementOutput::Query(QueryOutput::Histories(hs)) => {
            for (atom, versions) in &hs {
                println!("{atom}:");
                for v in versions {
                    let vals: Vec<String> =
                        v.tuple.values().iter().map(|x| x.to_string()).collect();
                    println!("  vt={} tt={} [{}]", v.vt, v.tt, vals.join(", "));
                }
            }
            println!(
                "({} atom{})",
                hs.len(),
                if hs.len() == 1 { "" } else { "s" }
            );
        }
        StatementOutput::Query(QueryOutput::Aggregate { steps, integral }) => {
            println!("during | count | sum");
            for s in &steps {
                println!("{} | {} | {}", s.during, s.count, s.sum);
            }
            if let Some(i) = integral {
                println!("integral = {i}");
            }
            println!(
                "({} step{})",
                steps.len(),
                if steps.len() == 1 { "" } else { "s" }
            );
        }
        StatementOutput::Explain(report) => print!("{}", report.render()),
        StatementOutput::TypeCreated(id) => println!("type #{} created", id.0),
        StatementOutput::MoleculeCreated(id) => println!("molecule #{} created", id.0),
        StatementOutput::Inserted(atom, tt) => println!("inserted {atom} at tt={tt}"),
        StatementOutput::Modified(n, tt) => println!("{n} atom(s) modified at tt={tt}"),
    }
}

fn print_mat_atom(a: &MatAtom, indent: usize) {
    let pad = "  ".repeat(indent);
    let vals: Vec<String> = a
        .version
        .tuple
        .values()
        .iter()
        .map(|v| v.to_string())
        .collect();
    println!("{pad}{} [{}] vt={}", a.id, vals.join(", "), a.version.vt);
    for (_, kids) in &a.children {
        for k in kids {
            print_mat_atom(k, indent + 1);
        }
    }
}
