//! `tcom-shell` — an interactive TQL shell over a tcom database.
//!
//! ```text
//! cargo run --bin tcom-shell -- /path/to/db [--store chain|delta|split] [--compact [min-closed]]
//! cargo run --bin tcom-shell -- --connect host:port
//! ```
//!
//! The shell runs either *embedded* (against a local database directory)
//! or *connected* (against a running `tcom-server` over TCP); `.connect`
//! switches to a server mid-session and `.disconnect` switches back.
//!
//! Statements end with `;` and may span lines. Meta commands:
//!
//! ```text
//! .help                 this text
//! .connect host:port    attach to a tcom-server (statements go remote)
//! .disconnect           drop the server connection (back to local, if any)
//! .begin .commit .rollback   explicit transaction on the connection
//! .types                list atom types and attributes          (local)
//! .molecules            list molecule types                     (local)
//! .stats                storage + buffer statistics             (local)
//! .metrics              full metrics-registry exposition        (local)
//! .checkpoint           flush everything and truncate the WAL   (local)
//! .now                  transaction-time clock (local or server)
//! .quit                 exit (clean shutdown checkpoint)
//! ```

use std::io::{BufRead, Write};
use std::sync::Arc;
use tcom::prelude::*;
use tcom_client::{Client, Response};
use tcom_query::{run_statement, StatementOutput};

/// Where statements execute: an embedded database, a server, or both (the
/// connection takes precedence while it exists).
struct Shell {
    db: Option<Arc<Database>>,
    remote: Option<Client>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let path = args.first().filter(|a| !a.starts_with("--")).cloned();
    let connect = args
        .iter()
        .position(|a| a == "--connect")
        .and_then(|i| args.get(i + 1).cloned());
    if path.is_none() && connect.is_none() {
        eprintln!(
            "usage: tcom-shell <db-dir> [--store chain|delta|split]\n\
             \u{20}      tcom-shell <db-dir> --compact [min-closed]\n\
             \u{20}      tcom-shell --connect host:port"
        );
        std::process::exit(2);
    }
    let mut config = DbConfig::default();
    if let Some(i) = args.iter().position(|a| a == "--store") {
        config = config.store_kind(match args.get(i + 1).map(String::as_str) {
            Some("chain") => StoreKind::Chain,
            Some("delta") => StoreKind::Delta,
            Some("split") | None => StoreKind::Split,
            Some(other) => {
                eprintln!("unknown store kind '{other}'");
                std::process::exit(2);
            }
        });
    }
    if let Some(i) = args.iter().position(|a| a == "--compact") {
        config = config.compaction(true);
        // Optional threshold: how many closed versions a type accumulates
        // before the compactor tiers them into a segment.
        if let Some(n) = args.get(i + 1).and_then(|a| a.parse::<u64>().ok()) {
            config = config.compact_min_closed(n);
        }
    }
    let db = path.as_deref().map(|p| match Database::open(p, config) {
        Ok(db) => {
            println!(
                "tcom shell — {} (store: {}, clock: {})",
                p,
                db.config().store_kind,
                db.now()
            );
            Arc::new(db)
        }
        Err(e) => {
            eprintln!("cannot open {p}: {e}");
            std::process::exit(1);
        }
    });
    // Inert handle unless `--compact` turned the knob on; held for the
    // whole session so drop joins the thread before the database closes.
    let _compactor = db.as_ref().map(|db| Compactor::spawn(db.clone()));
    let remote = connect.as_deref().map(|addr| match Client::connect(addr) {
        Ok(c) => {
            println!("connected to {} ({})", addr, c.server_info());
            c
        }
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    });
    let mut shell = Shell { db, remote };
    println!("statements end with ';' — try .help");

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("tql> ");
        } else {
            print!("...> ");
        }
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('.') {
            if !meta_command(&mut shell, trimmed) {
                break;
            }
            continue;
        }
        buffer.push_str(&line);
        if !buffer.trim_end().ends_with(';') {
            continue;
        }
        let stmt = buffer.trim().trim_end_matches(';').to_owned();
        buffer.clear();
        if stmt.is_empty() {
            continue;
        }
        run_shell_statement(&mut shell, &stmt);
    }
    println!("bye");
}

/// Executes one statement through the connection when one exists, the
/// embedded database otherwise.
fn run_shell_statement(shell: &mut Shell, stmt: &str) {
    if let Some(client) = shell.remote.as_mut() {
        match client.query(stmt) {
            Ok(Response::Output(out)) => print_output(out),
            Ok(Response::Pending(ack)) => println!("buffered in open transaction: {ack:?}"),
            Err(e) => eprintln!("error: {e}"),
        }
        return;
    }
    match &shell.db {
        Some(db) => {
            // A wait-die victim has applied nothing (the background
            // compactor's swap briefly owns every commit stripe), so the
            // statement is safe to replay; give maintenance a moment to
            // finish rather than surfacing a spurious error.
            let mut attempts = 0u32;
            loop {
                match run_statement(db, stmt) {
                    Ok(out) => break print_output(out),
                    Err(e) if tcom_core::is_wait_die_abort(&e) && attempts < 400 => {
                        attempts += 1;
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                    Err(e) => break eprintln!("error: {e}"),
                }
            }
        }
        None => eprintln!("not connected and no local database — use .connect host:port"),
    }
}

/// Returns `false` to exit the shell.
fn meta_command(shell: &mut Shell, cmd: &str) -> bool {
    // Connection management and connection-aware commands first.
    if let Some(addr) = cmd.strip_prefix(".connect ") {
        match Client::connect(addr.trim()) {
            Ok(c) => {
                println!("connected to {} ({})", addr.trim(), c.server_info());
                shell.remote = Some(c);
            }
            Err(e) => eprintln!("cannot connect to {}: {e}", addr.trim()),
        }
        return true;
    }
    match cmd {
        ".disconnect" => {
            if shell.remote.take().is_some() {
                println!(
                    "disconnected{}",
                    if shell.db.is_some() {
                        " — statements run against the local database again"
                    } else {
                        ""
                    }
                );
            } else {
                eprintln!("not connected");
            }
            return true;
        }
        ".begin" | ".commit" | ".rollback" => {
            let Some(client) = shell.remote.as_mut() else {
                eprintln!("{cmd} needs a server connection (embedded DML auto-commits)");
                return true;
            };
            let r = match cmd {
                ".begin" => client.begin().map(|()| "transaction open".to_string()),
                ".commit" => client.commit().map(|tt| format!("committed at tt={tt}")),
                _ => client.rollback().map(|()| "rolled back".to_string()),
            };
            match r {
                Ok(msg) => println!("{msg}"),
                Err(e) => eprintln!("error: {e}"),
            }
            return true;
        }
        ".now" => {
            if let Some(client) = shell.remote.as_mut() {
                match client.ping() {
                    Ok(tt) => println!("{tt}"),
                    Err(e) => eprintln!("error: {e}"),
                }
                return true;
            }
        }
        _ => {}
    }
    let Some(db) = shell.db.as_ref() else {
        match cmd {
            ".quit" | ".exit" | ".q" => return false,
            ".help" => print_help(),
            other => {
                eprintln!("{other} needs a local database (only .connect/.now/.quit work remotely)")
            }
        }
        return true;
    };
    match cmd {
        ".quit" | ".exit" | ".q" => return false,
        ".help" => print_help(),
        ".types" => db.with_catalog(|c| {
            for t in c.atom_types() {
                println!("type {} (#{})", t.name, t.id.0);
                for (i, a) in t.attrs.iter().enumerate() {
                    println!(
                        "  {i}: {} {}{}{}",
                        a.name,
                        a.ty,
                        if a.not_null { " NOT NULL" } else { "" },
                        if a.indexed { " INDEXED" } else { "" },
                    );
                }
            }
        }),
        ".molecules" => db.with_catalog(|c| {
            for m in c.molecule_types() {
                let root = c
                    .atom_type(m.root)
                    .map(|t| t.name.clone())
                    .unwrap_or_default();
                println!("molecule {} (root {root}, {} edges)", m.name, m.edges.len());
            }
        }),
        ".stats" => {
            match db.all_type_stats() {
                Ok(stats) => {
                    for ts in stats {
                        let st = &ts.store;
                        println!(
                            "{} ({}): {} atoms, {} versions ({} open, {:.0}%), \
                             depth mean {:.1} max {}, {} pages ({} resident, {:.0}%), \
                             {} bytes, {} time-index entries, {} changes since snapshot",
                            ts.name,
                            ts.kind,
                            st.atoms,
                            st.versions,
                            st.open_versions,
                            ts.open_ratio() * 100.0,
                            ts.mean_depth(),
                            st.max_depth,
                            st.heap_pages,
                            ts.resident_pages,
                            ts.residency() * 100.0,
                            st.record_bytes,
                            st.time_entries,
                            ts.changes_since,
                        );
                    }
                }
                Err(e) => eprintln!("error: {e}"),
            }
            let b = db.buffer_stats();
            println!(
                "buffer: {} hits, {} misses, {} evictions; wal: {} bytes",
                b.hits,
                b.misses,
                b.evictions,
                db.wal_len()
            );
        }
        ".metrics" => print!("{}", db.metrics().render_text()),
        ".checkpoint" => match db.checkpoint() {
            Ok(()) => println!("checkpointed"),
            Err(e) => eprintln!("error: {e}"),
        },
        ".now" => println!("{}", db.now()),
        other => eprintln!("unknown command {other} — try .help"),
    }
    true
}

fn print_help() {
    println!(
        ".connect host:port .disconnect .begin .commit .rollback\n\
         .types .molecules .stats .metrics .checkpoint .now .quit\n\
         SELECT … | EXPLAIN ANALYZE SELECT … | CREATE TYPE … |\n\
         CREATE MOLECULE … | INSERT INTO … | UPDATE … SET … |\n\
         DELETE FROM … (end with ';')"
    );
}

fn print_output(out: StatementOutput) {
    match out {
        StatementOutput::Query(QueryOutput::Rows { columns, rows }) => {
            println!("{} | vt | tt", columns.join(" | "));
            for r in &rows {
                let vals: Vec<String> = r.values.iter().map(|v| v.to_string()).collect();
                println!("{} | {} | {}", vals.join(" | "), r.vt, r.tt);
            }
            println!(
                "({} row{})",
                rows.len(),
                if rows.len() == 1 { "" } else { "s" }
            );
        }
        StatementOutput::Query(QueryOutput::Molecules(ms)) => {
            for m in &ms {
                println!("molecule @{} ({} atoms):", m.root.id, m.size());
                print_mat_atom(&m.root, 1);
            }
            println!(
                "({} molecule{})",
                ms.len(),
                if ms.len() == 1 { "" } else { "s" }
            );
        }
        StatementOutput::Query(QueryOutput::Histories(hs)) => {
            for (atom, versions) in &hs {
                println!("{atom}:");
                for v in versions {
                    let vals: Vec<String> =
                        v.tuple.values().iter().map(|x| x.to_string()).collect();
                    println!("  vt={} tt={} [{}]", v.vt, v.tt, vals.join(", "));
                }
            }
            println!(
                "({} atom{})",
                hs.len(),
                if hs.len() == 1 { "" } else { "s" }
            );
        }
        StatementOutput::Query(QueryOutput::Aggregate { steps, integral }) => {
            println!("during | count | sum");
            for s in &steps {
                println!("{} | {} | {}", s.during, s.count, s.sum);
            }
            if let Some(i) = integral {
                println!("integral = {i}");
            }
            println!(
                "({} step{})",
                steps.len(),
                if steps.len() == 1 { "" } else { "s" }
            );
        }
        StatementOutput::Explain(report) => print!("{}", report.render()),
        StatementOutput::TypeCreated(id) => println!("type #{} created", id.0),
        StatementOutput::MoleculeCreated(id) => println!("molecule #{} created", id.0),
        StatementOutput::Inserted(atom, tt) => println!("inserted {atom} at tt={tt}"),
        StatementOutput::Modified(n, tt) => println!("{n} atom(s) modified at tt={tt}"),
    }
}

fn print_mat_atom(a: &MatAtom, indent: usize) {
    let pad = "  ".repeat(indent);
    let vals: Vec<String> = a
        .version
        .tuple
        .values()
        .iter()
        .map(|v| v.to_string())
        .collect();
    println!("{pad}{} [{}] vt={}", a.id, vals.join(", "), a.version.vt);
    for (_, kids) in &a.children {
        for k in kids {
            print_mat_atom(k, indent + 1);
        }
    }
}
