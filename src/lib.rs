//! # tcom — a temporal complex-object database engine
//!
//! A from-scratch Rust realization of the temporal complex-object data
//! model in the tradition of Käfer & Schöning's SIGMOD '92 paper: typed
//! *atoms* with link attributes, dynamically derived *molecules* (complex
//! objects), and full **bitemporal** versioning (valid time × transaction
//! time) on a paged storage engine with three competing temporal storage
//! formats.
//!
//! ```no_run
//! use tcom::prelude::*;
//!
//! let db = Database::open("./mydb", DbConfig::default())?;
//! let emp = db.define_atom_type(
//!     "emp",
//!     vec![
//!         AttrDef::new("name", DataType::Text).not_null(),
//!         AttrDef::new("salary", DataType::Int).indexed(),
//!     ],
//! )?;
//! let mut txn = db.begin();
//! let ann = txn.insert_atom(
//!     emp,
//!     Interval::all(),
//!     Tuple::new(vec![Value::from("ann"), Value::Int(100)]),
//! )?;
//! txn.commit()?;
//!
//! // Time travel: the state as of transaction time 1.
//! let v = db.version_at(ann, TimePoint(1), TimePoint(0))?;
//! assert!(v.is_some());
//! # tcom::Result::Ok(())
//! ```
//!
//! The crates underneath, re-exported here:
//!
//! * [`kernel`] — time model, values, ids, codec;
//! * [`storage`] — pages, buffer pool, heap files, B⁺-trees;
//! * [`catalog`] — atom types, molecule types;
//! * [`version`] — the three temporal storage formats;
//! * [`wal`] — write-ahead logging;
//! * [`core`] — the engine (transactions, molecules, temporal algebra);
//! * [`query`] — TQL, the temporal query language.

pub use tcom_catalog as catalog;
pub use tcom_core as core;
pub use tcom_kernel as kernel;
pub use tcom_query as query;
pub use tcom_storage as storage;
pub use tcom_version as version;
pub use tcom_wal as wal;

pub use tcom_kernel::{Error, Result};

/// Everything an application typically needs.
pub mod prelude {
    pub use tcom_catalog::{AttrDef, MoleculeEdge};
    pub use tcom_core::{Compactor, Database, DbConfig, MatAtom, Molecule, StoreKind, Txn};
    pub use tcom_kernel::time::{iv, iv_from};
    pub use tcom_kernel::{
        AtomId, AtomTypeId, AttrId, DataType, Interval, MoleculeTypeId, Result, TemporalElement,
        TimePoint, Tuple, Value,
    };
    pub use tcom_query::{execute, execute_with, ExecOptions, QueryOutput};
    pub use tcom_wal::SyncPolicy;
}
