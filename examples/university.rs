//! The university administration scenario: departments employing
//! employees working on projects — the classic complex-object workload —
//! with bitemporal personnel history.
//!
//! Demonstrates: molecule types over `REFSET` links, molecule
//! materialization and time travel, valid-time salary periods, molecule
//! histories, and TQL molecule queries.
//!
//! ```text
//! cargo run --example university
//! ```

use tcom::prelude::*;

fn main() -> Result<()> {
    let dir = std::env::temp_dir().join(format!("tcom-university-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = Database::open(&dir, DbConfig::default().store_kind(StoreKind::Split))?;

    // ---- schema -----------------------------------------------------
    let proj = db.define_atom_type(
        "proj",
        vec![AttrDef::new("title", DataType::Text).not_null()],
    )?;
    let emp = db.define_atom_type(
        "emp",
        vec![
            AttrDef::new("name", DataType::Text).not_null(),
            AttrDef::new("salary", DataType::Int).indexed(),
            AttrDef::new("works_on", DataType::RefSet(proj)),
        ],
    )?;
    let dept = db.define_atom_type(
        "dept",
        vec![
            AttrDef::new("name", DataType::Text).not_null(),
            AttrDef::new("employs", DataType::RefSet(emp)),
        ],
    )?;
    // A department molecule: dept --employs--> emp --works_on--> proj.
    let dept_mol = db.define_molecule_type(
        "dept_mol",
        dept,
        vec![
            MoleculeEdge {
                from: dept,
                attr: AttrId(1),
                to: emp,
            },
            MoleculeEdge {
                from: emp,
                attr: AttrId(2),
                to: proj,
            },
        ],
        None,
    )?;

    // ---- load (valid time = months since 2020-01) -------------------
    let mut txn = db.begin();
    let apollo = txn.insert_atom(
        proj,
        Interval::all(),
        Tuple::new(vec![Value::from("apollo")]),
    )?;
    let gemini = txn.insert_atom(
        proj,
        Interval::all(),
        Tuple::new(vec![Value::from("gemini")]),
    )?;
    let ann = txn.insert_atom(
        emp,
        Interval::all(),
        Tuple::new(vec![
            Value::from("ann"),
            Value::Int(100),
            Value::ref_set([apollo, gemini]),
        ]),
    )?;
    // Bob's contract runs from month 6 to month 30 only.
    let bob = txn.insert_atom(
        emp,
        iv(6, 30),
        Tuple::new(vec![
            Value::from("bob"),
            Value::Int(90),
            Value::ref_set([apollo]),
        ]),
    )?;
    let research = txn.insert_atom(
        dept,
        Interval::all(),
        Tuple::new(vec![Value::from("research"), Value::ref_set([ann, bob])]),
    )?;
    let t_load = txn.commit()?;
    println!("loaded at transaction time {t_load}");

    // ---- evolution ---------------------------------------------------
    // Ann's raise applies from month 12 on.
    let mut txn = db.begin();
    txn.update(
        ann,
        iv_from(12),
        Tuple::new(vec![
            Value::from("ann"),
            Value::Int(130),
            Value::ref_set([apollo, gemini]),
        ]),
    )?;
    let t_raise = txn.commit()?;

    // Bob leaves the company (logical delete, all valid time).
    let mut txn = db.begin();
    txn.delete(bob, Interval::all())?;
    let t_leave = txn.commit()?;

    // ---- queries ------------------------------------------------------
    // Ann's salary per valid-time period, current knowledge:
    println!("\nann's salary timeline (current knowledge):");
    for v in db.current_versions(ann)? {
        println!("  vt {} -> {}", v.vt, v.tuple.get(1));
    }

    // The research-department molecule now (valid month 10) vs. before Bob
    // left (transaction time t_raise).
    let now_mol = db
        .materialize_current(dept_mol, research, TimePoint(10))?
        .expect("research visible");
    println!(
        "\nresearch molecule now (vt=10):   {} atoms",
        now_mol.size()
    );
    let before = db
        .materialize(dept_mol, research, t_raise, TimePoint(10))?
        .expect("research visible then");
    println!(
        "research molecule @tt={t_raise} (vt=10): {} atoms",
        before.size()
    );

    // The molecule's transaction-time history: every state it went through.
    println!("\nmolecule history (vt=10):");
    for (tt, m) in db.molecule_history(
        dept_mol,
        research,
        TimePoint(10),
        TimePoint(0),
        TimePoint(100),
    )? {
        println!("  tt={tt}: {} atoms", m.size());
    }

    // TQL: who earns more than 95 in month 20, according to what we knew at
    // various transaction times?
    for (label, q) in [
        (
            "now",
            "SELECT name, salary FROM emp WHERE salary > 95 VALID AT 20".to_string(),
        ),
        (
            "at load",
            format!("SELECT name, salary FROM emp WHERE salary > 95 VALID AT 20 ASOF TT {t_load}"),
        ),
    ] {
        let out = execute(&db, &q)?;
        println!("\nTQL [{label}]:");
        if let QueryOutput::Rows { rows, .. } = out {
            for r in rows {
                println!("  {} earns {} (vt {})", r.values[0], r.values[1], r.vt);
            }
        }
    }

    // Molecule query through TQL.
    let out = execute(
        &db,
        "SELECT MOLECULE FROM dept_mol WHERE root.name = 'research' VALID AT 10",
    )?;
    if let QueryOutput::Molecules(mols) = out {
        println!(
            "\nTQL molecule query: {} molecule(s), size {}",
            mols.len(),
            mols[0].size()
        );
    }
    let _ = t_leave;

    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
