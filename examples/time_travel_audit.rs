//! Transaction-time auditing: "what did the database say, and when?"
//!
//! A compliance-style scenario: account balances change, a correction is
//! issued retroactively (valid-time update in the past), and an auditor
//! reconstructs both the *actual* timeline (valid time) and the *recorded*
//! timeline (transaction time), including what was believed at each point.
//!
//! Also demonstrates crash recovery: the process "crashes" with committed
//! work only in the WAL, and the reopened database recovers it.
//!
//! ```text
//! cargo run --example time_travel_audit
//! ```

use tcom::prelude::*;

fn main() -> Result<()> {
    let dir = std::env::temp_dir().join(format!("tcom-audit-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let account;
    let (t1, t2, t3);
    {
        let db = Database::open(&dir, DbConfig::default())?;
        let acct = db.define_atom_type(
            "account",
            vec![
                AttrDef::new("owner", DataType::Text).not_null(),
                AttrDef::new("balance", DataType::Int).indexed(),
            ],
        )?;

        // Month 0: account opened with 1000.
        let mut txn = db.begin();
        account = txn.insert_atom(
            acct,
            iv_from(0),
            Tuple::new(vec![Value::from("acme corp"), Value::Int(1000)]),
        )?;
        t1 = txn.commit()?;

        // Recorded later: from month 5 on the balance was 1400.
        let mut txn = db.begin();
        txn.update(
            account,
            iv_from(5),
            Tuple::new(vec![Value::from("acme corp"), Value::Int(1400)]),
        )?;
        t2 = txn.commit()?;

        // A retroactive correction: months 2..5 should have read 900
        // (a missed withdrawal). Valid-time update in the past.
        let mut txn = db.begin();
        txn.update(
            account,
            iv(2, 5),
            Tuple::new(vec![Value::from("acme corp"), Value::Int(900)]),
        )?;
        t3 = txn.commit()?;

        println!("recorded at tt: open={t1}, update={t2}, correction={t3}");

        // The believed balance timeline at each recording point:
        for tt in [t1, t2, t3] {
            println!("\nbelieved timeline as of tt={tt}:");
            for v in db.versions_at(account, tt)? {
                println!("  vt {} -> {}", v.vt, v.tuple.get(1));
            }
        }

        // Audit question: what did we *report* for month 3 at tt=t2, and
        // what do we know now?
        let then = db.version_at(account, t2, TimePoint(3))?.expect("existed");
        let now = db.current_tuple(account, TimePoint(3))?.expect("exists");
        println!(
            "\nmonth-3 balance reported at tt={t2}: {}",
            then.tuple.get(1)
        );
        println!("month-3 balance as known today:     {}", now.get(1));

        // Full audit trail, newest first.
        println!("\nfull audit trail:");
        for v in db.history(account)? {
            println!(
                "  recorded tt={} valid vt={} balance={}",
                v.tt,
                v.vt,
                v.tuple.get(1)
            );
        }

        // Crash with the last transaction only in the WAL.
        db.crash();
        println!("\n-- process crashed (no clean shutdown) --");
    }

    // Recovery: everything committed survives.
    let db = Database::open(&dir, DbConfig::default())?;
    let recovered = db.history(account)?;
    println!(
        "after recovery: {} recorded versions, clock={}",
        recovered.len(),
        db.now()
    );
    assert_eq!(db.now(), t3);
    let month3 = db.current_tuple(account, TimePoint(3))?.expect("exists");
    assert_eq!(month3.get(1), &Value::Int(900));
    println!("month-3 corrected balance intact: {}", month3.get(1));

    // TQL over the recovered store.
    let out = execute(&db, "SELECT HISTORY FROM account a WHERE a.balance < 1000")?;
    if let QueryOutput::Histories(hs) = out {
        println!(
            "TQL: {} account(s) ever had a sub-1000 balance on record",
            hs.len()
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
