//! Quickstart: create a database, insert and update an atom, travel
//! through transaction time, and run a TQL query.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use tcom::prelude::*;

fn main() -> Result<()> {
    let dir = std::env::temp_dir().join(format!("tcom-quickstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = Database::open(&dir, DbConfig::default())?;

    // 1. Schema: an employee type with an indexed salary.
    let emp = db.define_atom_type(
        "emp",
        vec![
            AttrDef::new("name", DataType::Text).not_null(),
            AttrDef::new("salary", DataType::Int).indexed(),
        ],
    )?;

    // 2. Insert Ann (valid for all time), commit — transaction time 1.
    let mut txn = db.begin();
    let ann = txn.insert_atom(
        emp,
        Interval::all(),
        Tuple::new(vec![Value::from("ann"), Value::Int(100)]),
    )?;
    let t1 = txn.commit()?;
    println!("inserted ann at transaction time {t1}");

    // 3. Give Ann a raise — transaction time 2.
    let mut txn = db.begin();
    txn.update(
        ann,
        Interval::all(),
        Tuple::new(vec![Value::from("ann"), Value::Int(150)]),
    )?;
    let t2 = txn.commit()?;
    println!("raised ann's salary at transaction time {t2}");

    // 4. The present…
    let now = db.current_tuple(ann, TimePoint(0))?.expect("ann exists");
    println!("now:        {now:?}");

    // …and the past: what did the database say at transaction time 1?
    let then = db.version_at(ann, t1, TimePoint(0))?.expect("ann existed");
    println!("as of t={t1}: {:?}", then.tuple);

    // 5. The full recorded history.
    for (i, v) in db.history(ann)?.iter().enumerate() {
        println!("history[{i}]: vt={} tt={} tuple={:?}", v.vt, v.tt, v.tuple);
    }

    // 6. The same questions in TQL.
    let out = execute(&db, "SELECT name, salary FROM emp WHERE salary > 120")?;
    println!("TQL current: {out:?}");
    let out = execute(&db, "SELECT name, salary FROM emp ASOF TT 1")?;
    println!("TQL as-of-1: {out:?}");

    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
