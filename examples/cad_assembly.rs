//! CAD bill-of-materials: recursive part-of molecules with engineering
//! change history.
//!
//! Demonstrates: self-referential atom types, recursive molecule types
//! with depth bounds and cycle guards, BOM explosion at any transaction
//! time, and mass roll-ups over materialized assemblies.
//!
//! ```text
//! cargo run --example cad_assembly
//! ```

use tcom::prelude::*;

/// Sums the mass attribute over a materialized subtree.
fn total_mass(atom: &MatAtom) -> i64 {
    let mut sum = 0i64;
    atom.visit(&mut |a| {
        if let Value::Int(m) = a.version.tuple.get(1) {
            sum += m;
        }
    });
    sum
}

fn main() -> Result<()> {
    let dir = std::env::temp_dir().join(format!("tcom-cad-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = Database::open(&dir, DbConfig::default())?;

    // A self-referential part type (its own id is 0, the first type).
    let part = db.define_atom_type(
        "part",
        vec![
            AttrDef::new("name", DataType::Text).not_null(),
            AttrDef::new("mass_g", DataType::Int),
            AttrDef::new("components", DataType::RefSet(AtomTypeId(0))),
        ],
    )?;
    let bom = db.define_molecule_type(
        "bom",
        part,
        vec![MoleculeEdge {
            from: part,
            attr: AttrId(2),
            to: part,
        }],
        Some(16),
    )?;

    // Build a small drone assembly.
    let mut txn = db.begin();
    let mk = |txn: &mut Txn<'_>, name: &str, mass: i64, kids: Vec<AtomId>| {
        txn.insert_atom(
            part,
            Interval::all(),
            Tuple::new(vec![
                Value::from(name),
                Value::Int(mass),
                Value::ref_set(kids),
            ]),
        )
    };
    let rotor = mk(&mut txn, "rotor", 12, vec![])?;
    let motor = mk(&mut txn, "motor", 55, vec![rotor])?;
    let esc = mk(&mut txn, "esc", 9, vec![])?;
    let arm = mk(&mut txn, "arm", 30, vec![motor, esc])?;
    let battery = mk(&mut txn, "battery", 180, vec![])?;
    let frame = mk(&mut txn, "frame", 95, vec![])?;
    let fc = mk(&mut txn, "flight-controller", 8, vec![])?;
    let drone = mk(&mut txn, "drone", 0, vec![frame, battery, fc, arm])?;
    let t0 = txn.commit()?;

    let m = db
        .materialize_current(bom, drone, TimePoint(0))?
        .expect("drone");
    println!(
        "initial BOM: {} parts, depth {}, total mass {} g (recorded at tt={t0})",
        m.size(),
        m.root.depth(),
        total_mass(&m.root)
    );

    // Engineering change 1: lighter battery.
    let mut txn = db.begin();
    txn.update(
        battery,
        Interval::all(),
        Tuple::new(vec![
            Value::from("battery"),
            Value::Int(150),
            Value::ref_set([]),
        ]),
    )?;
    let t1 = txn.commit()?;

    // Engineering change 2: the arm gains a vibration damper.
    let mut txn = db.begin();
    let damper = mk(&mut txn, "damper", 4, vec![])?;
    txn.update(
        arm,
        Interval::all(),
        Tuple::new(vec![
            Value::from("arm"),
            Value::Int(30),
            Value::ref_set([motor, esc, damper]),
        ]),
    )?;
    let t2 = txn.commit()?;

    // BOM explosion at every revision.
    for (label, tt) in [("rev A", t0), ("rev B", t1), ("rev C", t2)] {
        let m = db
            .materialize(bom, drone, tt, TimePoint(0))?
            .expect("drone");
        println!(
            "{label} (tt={tt}): {} parts, total mass {} g",
            m.size(),
            total_mass(&m.root)
        );
    }

    // Where is the damper used? Walk the current molecule.
    let m = db
        .materialize_current(bom, drone, TimePoint(0))?
        .expect("drone");
    let mut parents: Vec<(String, String)> = Vec::new();
    m.root.visit(&mut |a| {
        for (_, kids) in &a.children {
            for k in kids {
                parents.push((
                    format!("{}", k.version.tuple.get(0)),
                    format!("{}", a.version.tuple.get(0)),
                ));
            }
        }
    });
    println!("\nwhere-used (current):");
    for (child, parent) in parents.iter().filter(|(c, _)| c.contains("damper")) {
        println!("  {child} is used in {parent}");
    }

    // The arm's own engineering-change history.
    println!("\narm history:");
    for v in db.history(arm)? {
        println!("  tt={}: components={}", v.tt, v.tuple.get(2));
    }

    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
