//! A tour of TQL: the whole lifecycle — schema, data, evolution, time
//! travel, molecules — driven purely through statements, the way the
//! `tcom-shell` does it.
//!
//! ```text
//! cargo run --example tql_tour
//! ```

use tcom::prelude::*;
use tcom::query::{run_statement, StatementOutput};

fn run(db: &Database, stmt: &str) -> Result<StatementOutput> {
    println!("tql> {stmt}");
    let out = run_statement(db, stmt)?;
    match &out {
        StatementOutput::Query(QueryOutput::Rows { columns, rows }) => {
            println!("     {}", columns.join(" | "));
            for r in rows {
                let vals: Vec<String> = r.values.iter().map(|v| v.to_string()).collect();
                println!("     {}  (vt {}, tt {})", vals.join(" | "), r.vt, r.tt);
            }
        }
        StatementOutput::Query(QueryOutput::Molecules(ms)) => {
            for m in ms {
                println!("     molecule @{}: {} atoms", m.root.id, m.size());
            }
        }
        StatementOutput::Query(QueryOutput::Histories(hs)) => {
            for (atom, vs) in hs {
                println!("     {atom}: {} versions", vs.len());
            }
        }
        other => println!("     {other:?}"),
    }
    Ok(out)
}

fn main() -> Result<()> {
    let dir = std::env::temp_dir().join(format!("tcom-tour-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = Database::open(&dir, DbConfig::default())?;

    // ---- schema, purely declarative -----------------------------------
    run(
        &db,
        "CREATE TYPE proj (title TEXT NOT NULL, budget INT INDEXED)",
    )?;
    run(
        &db,
        "CREATE TYPE emp (name TEXT NOT NULL, salary INT INDEXED, works_on REFSET(proj))",
    )?;
    run(
        &db,
        "CREATE TYPE dept (name TEXT NOT NULL, employs REFSET(emp))",
    )?;
    run(
        &db,
        "CREATE MOLECULE org ROOT dept (dept.employs TO emp, emp.works_on TO proj)",
    )?;

    // ---- data ----------------------------------------------------------
    let StatementOutput::Inserted(apollo, _) = run(
        &db,
        "INSERT INTO proj (title, budget) VALUES ('apollo', 900)",
    )?
    else {
        unreachable!()
    };
    let StatementOutput::Inserted(gemini, _) = run(
        &db,
        "INSERT INTO proj (title, budget) VALUES ('gemini', 400)",
    )?
    else {
        unreachable!()
    };
    let StatementOutput::Inserted(ann, _) = run(
        &db,
        &format!(
            "INSERT INTO emp (name, salary, works_on) VALUES ('ann', 100, {{@{}.{}, @{}.{}}})",
            apollo.ty.0, apollo.no.0, gemini.ty.0, gemini.no.0
        ),
    )?
    else {
        unreachable!()
    };
    run(
        &db,
        &format!(
            "INSERT INTO emp (name, salary, works_on) VALUES ('bob', 90, {{@{}.{}}}) VALID IN [0, 24)",
            apollo.ty.0, apollo.no.0
        ),
    )?;
    run(
        &db,
        &format!(
            "INSERT INTO dept (name, employs) VALUES ('research', {{@{}.{}, @{}.1}})",
            ann.ty.0, ann.no.0, ann.ty.0
        ),
    )?;

    // ---- evolution ------------------------------------------------------
    run(
        &db,
        "UPDATE emp SET salary = 130 WHERE name = 'ann' VALID FROM 12",
    )?;
    run(&db, "UPDATE proj SET budget = 1200 WHERE title = 'apollo'")?;
    run(&db, "DELETE FROM emp WHERE name = 'bob'")?;

    // ---- queries across time --------------------------------------------
    run(&db, "SELECT name, salary FROM emp VALID AT 20")?;
    run(&db, "SELECT name, salary FROM emp VALID AT 20 ASOF TT 5")?;
    run(
        &db,
        "SELECT name, salary FROM emp WHERE salary >= 100 VALID IN [0, 24)",
    )?;
    run(&db, "SELECT HISTORY FROM emp e WHERE e.name = 'bob'")?;
    run(
        &db,
        "SELECT MOLECULE FROM org WHERE root.name = 'research' VALID AT 20",
    )?;
    run(
        &db,
        "SELECT MOLECULE FROM org WHERE root.name = 'research' VALID AT 20 ASOF TT 5",
    )?;

    // ---- the safety nets -------------------------------------------------
    db.assert_integrity()?;
    println!("integrity: ok");
    let removed = db.prune_history(TimePoint(7))?;
    println!("pruned {removed} pre-tt-7 versions");
    db.assert_integrity()?;
    println!("integrity after prune: ok");

    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
