//! Full-stack integration tests: every layer from TQL down to the disk
//! manager exercised together through the facade crate.

use tcom::prelude::*;

fn tmpdir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("tcom-fs-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// A complete lifecycle: schema → load → evolve → query (all temporal
/// modes) → crash → recover → query again — for every storage format.
#[test]
fn lifecycle_every_store_kind() {
    for kind in [StoreKind::Chain, StoreKind::Delta, StoreKind::Split] {
        let dir = tmpdir(&format!("life-{kind}"));
        let (emp_ty, ann);
        {
            let db = Database::open(&dir, DbConfig::default().store_kind(kind)).unwrap();
            emp_ty = db
                .define_atom_type(
                    "emp",
                    vec![
                        AttrDef::new("name", DataType::Text).not_null(),
                        AttrDef::new("salary", DataType::Int).indexed(),
                    ],
                )
                .unwrap();
            let mut txn = db.begin();
            ann = txn
                .insert_atom(
                    emp_ty,
                    Interval::all(),
                    Tuple::new(vec![Value::from("ann"), Value::Int(100)]),
                )
                .unwrap();
            for i in 0..9i64 {
                txn.insert_atom(
                    emp_ty,
                    Interval::all(),
                    Tuple::new(vec![Value::from(format!("e{i}")), Value::Int(100 + i)]),
                )
                .unwrap();
            }
            txn.commit().unwrap();
            let mut txn = db.begin();
            txn.update(
                ann,
                iv_from(50),
                Tuple::new(vec![Value::from("ann"), Value::Int(200)]),
            )
            .unwrap();
            txn.commit().unwrap();

            // TQL across temporal modes.
            let out = execute(
                &db,
                "SELECT name, salary FROM emp WHERE salary >= 200 VALID AT 60",
            )
            .unwrap();
            assert_eq!(out.len(), 1);
            let out = execute(&db, "SELECT name FROM emp WHERE name = 'ann' VALID AT 10").unwrap();
            assert_eq!(out.len(), 1);
            let out = execute(&db, "SELECT HISTORY FROM emp e WHERE e.name = 'ann'").unwrap();
            let QueryOutput::Histories(hs) = out else {
                panic!()
            };
            assert_eq!(hs[0].1.len(), 3); // original + split remainder + raised
            db.crash();
        }
        {
            let db = Database::open(&dir, DbConfig::default().store_kind(kind)).unwrap();
            let out = execute(
                &db,
                "SELECT name, salary FROM emp WHERE salary >= 200 VALID AT 60",
            )
            .unwrap();
            assert_eq!(out.len(), 1, "{kind}: recovery lost the raise");
            assert_eq!(db.current_versions(ann).unwrap().len(), 2);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Molecules spanning three atom types survive reopen and answer both
/// API-level and TQL-level time travel identically.
#[test]
fn molecules_survive_reopen() {
    let dir = tmpdir("mol-reopen");
    let (mol, root, t_before);
    {
        let db = Database::open(&dir, DbConfig::default()).unwrap();
        let proj = db
            .define_atom_type("proj", vec![AttrDef::new("title", DataType::Text)])
            .unwrap();
        let emp = db
            .define_atom_type(
                "emp",
                vec![
                    AttrDef::new("name", DataType::Text),
                    AttrDef::new("works_on", DataType::RefSet(proj)),
                ],
            )
            .unwrap();
        let dept = db
            .define_atom_type(
                "dept",
                vec![
                    AttrDef::new("name", DataType::Text),
                    AttrDef::new("employs", DataType::RefSet(emp)),
                ],
            )
            .unwrap();
        mol = db
            .define_molecule_type(
                "dm",
                dept,
                vec![
                    MoleculeEdge {
                        from: dept,
                        attr: AttrId(1),
                        to: emp,
                    },
                    MoleculeEdge {
                        from: emp,
                        attr: AttrId(1),
                        to: proj,
                    },
                ],
                None,
            )
            .unwrap();
        let mut txn = db.begin();
        let p = txn
            .insert_atom(proj, Interval::all(), Tuple::new(vec![Value::from("x")]))
            .unwrap();
        let e1 = txn
            .insert_atom(
                emp,
                Interval::all(),
                Tuple::new(vec![Value::from("a"), Value::ref_set([p])]),
            )
            .unwrap();
        let e2 = txn
            .insert_atom(
                emp,
                Interval::all(),
                Tuple::new(vec![Value::from("b"), Value::ref_set([p])]),
            )
            .unwrap();
        root = txn
            .insert_atom(
                dept,
                Interval::all(),
                Tuple::new(vec![Value::from("d"), Value::ref_set([e1, e2])]),
            )
            .unwrap();
        t_before = txn.commit().unwrap();
        let mut txn = db.begin();
        txn.delete(e2, Interval::all()).unwrap();
        txn.commit().unwrap();
    }
    let db = Database::open(&dir, DbConfig::default()).unwrap();
    let now = db
        .materialize_current(mol, root, TimePoint(0))
        .unwrap()
        .unwrap();
    assert_eq!(now.size(), 3); // dept + a + x (b deleted)
    let past = db
        .materialize(mol, root, t_before, TimePoint(0))
        .unwrap()
        .unwrap();
    assert_eq!(past.size(), 5); // dept + 2 emps + x twice (shared child repeated per parent)
    let _ = std::fs::remove_dir_all(&dir);
}

/// The WAL sync policy and checkpoint interval knobs behave sanely
/// together under sustained load.
#[test]
fn sustained_load_with_auto_checkpoints() {
    let dir = tmpdir("sustained");
    let db = Database::open(
        &dir,
        DbConfig::default()
            .store_kind(StoreKind::Split)
            .buffer_frames(64) // tiny pool: forces pressure flushes
            .checkpoint_interval(50)
            .sync_policy(SyncPolicy::OnCheckpoint),
    )
    .unwrap();
    let ty = db
        .define_atom_type("t", vec![AttrDef::new("v", DataType::Int).indexed()])
        .unwrap();
    let mut atoms = Vec::new();
    for chunk in 0..20 {
        let mut txn = db.begin();
        for i in 0..50i64 {
            atoms.push(
                txn.insert_atom(
                    ty,
                    Interval::all(),
                    Tuple::new(vec![Value::Int(chunk * 50 + i)]),
                )
                .unwrap(),
            );
        }
        txn.commit().unwrap();
    }
    // 1000 atoms on a 64-frame pool: loading alone exceeded the pool, so
    // pressure flushes must have happened and everything must read back.
    for (i, a) in atoms.iter().enumerate() {
        let t = db.current_tuple(*a, TimePoint(0)).unwrap().unwrap();
        assert_eq!(t.get(0), &Value::Int(i as i64));
    }
    // Heavy updates with the same tiny pool.
    for round in 0..5i64 {
        let mut txn = db.begin();
        for a in atoms.iter().step_by(7) {
            txn.update(
                *a,
                Interval::all(),
                Tuple::new(vec![Value::Int(round * 1_000_000)]),
            )
            .unwrap();
        }
        txn.commit().unwrap();
    }
    let out = tcom::query::execute(&db, "SELECT v FROM t WHERE v = 4000000").unwrap();
    assert_eq!(out.len(), atoms.iter().step_by(7).count());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Readers on other threads see only committed states while a writer
/// churns, across the whole stack.
#[test]
fn cross_thread_consistency() {
    let dir = tmpdir("threads");
    let db = std::sync::Arc::new(Database::open(&dir, DbConfig::default()).unwrap());
    let ty = db
        .define_atom_type(
            "pair",
            vec![
                AttrDef::new("a", DataType::Int),
                AttrDef::new("b", DataType::Int),
            ],
        )
        .unwrap();
    // Invariant per commit: a == -b.
    let mut txn = db.begin();
    let atom = txn
        .insert_atom(
            ty,
            Interval::all(),
            Tuple::new(vec![Value::Int(0), Value::Int(0)]),
        )
        .unwrap();
    txn.commit().unwrap();

    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    std::thread::scope(|s| {
        for _ in 0..2 {
            let db = db.clone();
            let stop = stop.clone();
            s.spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    // One consistent read through the engine API…
                    let t = db.current_tuple(atom, TimePoint(0)).unwrap().unwrap();
                    let (Value::Int(a), Value::Int(b)) = (t.get(0), t.get(1)) else {
                        panic!()
                    };
                    assert_eq!(*a, -*b, "torn read");
                    // …and one through TQL: the returned row itself must be
                    // internally consistent (commits may land in between).
                    let out = tcom::query::execute(&db, "SELECT a, b FROM pair").unwrap();
                    let QueryOutput::Rows { rows, .. } = out else {
                        panic!()
                    };
                    assert_eq!(rows.len(), 1);
                    let (Value::Int(a), Value::Int(b)) = (&rows[0].values[0], &rows[0].values[1])
                    else {
                        panic!()
                    };
                    assert_eq!(*a, -*b, "torn TQL read");
                }
            });
        }
        for i in 1..=100i64 {
            let mut txn = db.begin();
            txn.update(
                atom,
                Interval::all(),
                Tuple::new(vec![Value::Int(i), Value::Int(-i)]),
            )
            .unwrap();
            txn.commit().unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });
    assert_eq!(db.history(atom).unwrap().len(), 101);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Valid-time windows, TQL clipping and the temporal algebra agree.
#[test]
fn valid_time_semantics_across_layers() {
    let dir = tmpdir("vt-layers");
    let db = Database::open(&dir, DbConfig::default()).unwrap();
    let ty = db
        .define_atom_type(
            "contract",
            vec![
                AttrDef::new("who", DataType::Text),
                AttrDef::new("rate", DataType::Int),
            ],
        )
        .unwrap();
    let mut txn = db.begin();
    let c = txn
        .insert_atom(
            ty,
            iv(0, 100),
            Tuple::new(vec![Value::from("x"), Value::Int(10)]),
        )
        .unwrap();
    txn.commit().unwrap();
    // Rate change for [40, 60).
    let mut txn = db.begin();
    txn.update(
        c,
        iv(40, 60),
        Tuple::new(vec![Value::from("x"), Value::Int(20)]),
    )
    .unwrap();
    txn.commit().unwrap();

    // Engine view: 3 current slices.
    let cur = db.current_versions(c).unwrap();
    assert_eq!(cur.len(), 3);
    assert_eq!(cur[1].vt, iv(40, 60));

    // TQL window clips.
    let out = execute(&db, "SELECT rate FROM contract VALID IN [50, 80)").unwrap();
    let QueryOutput::Rows { rows, .. } = out else {
        panic!()
    };
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].vt, iv(50, 60));
    assert_eq!(rows[1].vt, iv(60, 80));

    // Algebra: build a temporal relation from the versions and slice it.
    use tcom::core::algebra::{timeslice, TemporalRow};
    let rel: Vec<TemporalRow> = cur
        .iter()
        .map(|v| TemporalRow {
            tuple: v.tuple.clone(),
            time: TemporalElement::from_interval(v.vt),
        })
        .collect();
    let snap = timeslice(&rel, TimePoint(45));
    assert_eq!(snap.len(), 1);
    assert_eq!(snap[0].get(1), &Value::Int(20));
    let _ = std::fs::remove_dir_all(&dir);
}
