//! End-to-end test of the `tcom-shell` binary: pipe a scripted session
//! through stdin and check the output, including persistence across two
//! shell invocations.

use std::io::Write;
use std::process::{Command, Stdio};

fn run_session(db_dir: &std::path::Path, script: &str) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_tcom-shell"))
        .arg(db_dir)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn tcom-shell");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(script.as_bytes())
        .expect("write script");
    let out = child.wait_with_output().expect("shell exits");
    assert!(out.status.success(), "shell failed: {out:?}");
    format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    )
}

#[test]
fn scripted_session_with_persistence() {
    let dir = std::env::temp_dir().join(format!("tcom-shelltest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Session 1: schema + data + queries.
    let out = run_session(
        &dir,
        "CREATE TYPE emp (name TEXT NOT NULL, salary INT INDEXED);\n\
         INSERT INTO emp (name, salary) VALUES ('ann', 100);\n\
         INSERT INTO emp (name, salary) VALUES ('bob', 80);\n\
         UPDATE emp SET salary = 130 WHERE name = 'ann';\n\
         SELECT name, salary FROM emp WHERE salary > 100;\n\
         .types\n\
         .quit\n",
    );
    assert!(out.contains("type #0 created"), "{out}");
    assert!(out.contains("inserted a0.0 at tt=1"), "{out}");
    assert!(out.contains("1 atom(s) modified at tt=3"), "{out}");
    assert!(out.contains("'ann' | 130"), "{out}");
    assert!(
        !out.contains("'bob'") || !out.contains("'bob' | 80 |"),
        "bob must not match"
    );
    assert!(out.contains("salary INT INDEXED"), "{out}");

    // Session 2: the data survived the shell's clean shutdown; history and
    // time travel work across processes.
    let out = run_session(
        &dir,
        "SELECT HISTORY FROM emp e WHERE e.name = 'ann';\n\
         SELECT name, salary FROM emp ASOF TT 1;\n\
         .stats\n\
         .quit\n",
    );
    assert!(out.contains("a0.0:"), "{out}");
    assert!(out.contains("'ann' | 100"), "time travel to tt=1: {out}");
    assert!(out.contains("2 atoms"), "{out}");

    // Errors are reported, not fatal.
    let out = run_session(
        &dir,
        "SELECT nope FROM emp;\nSELECT name FROM emp LIMIT 1;\n.quit\n",
    );
    assert!(out.contains("error:"), "{out}");
    assert!(
        out.contains("(1 row)"),
        "shell keeps going after errors: {out}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shell_rejects_missing_args() {
    let out = Command::new(env!("CARGO_BIN_EXE_tcom-shell"))
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}
