//! Property test: the full engine (transactions, WAL, version stores,
//! indexes) implements exactly the bitemporal semantics of a naive
//! in-memory specification, under random operation sequences — for every
//! storage format, including across a simulated crash.

use proptest::prelude::*;
use tcom::prelude::*;

/// The executable specification: a growing list of immutable version
/// records, mutated exactly like the engine is supposed to.
#[derive(Default, Clone)]
struct Spec {
    /// (vt, tt, value) triples; tt end FOREVER while current.
    versions: Vec<(Interval, Interval, i64)>,
    clock: u64,
}

impl Spec {
    fn current(&self) -> Vec<(Interval, i64)> {
        let mut v: Vec<(Interval, i64)> = self
            .versions
            .iter()
            .filter(|(_, tt, _)| tt.is_open_ended())
            .map(|(vt, _, val)| (*vt, *val))
            .collect();
        v.sort_by_key(|(vt, _)| vt.start());
        v
    }

    fn at(&self, tt: TimePoint) -> Vec<(Interval, i64)> {
        let mut v: Vec<(Interval, i64)> = self
            .versions
            .iter()
            .filter(|(_, t, _)| t.contains(tt))
            .map(|(vt, _, val)| (*vt, *val))
            .collect();
        v.sort_by_key(|(vt, _)| vt.start());
        v
    }

    /// Mirrors the engine's update: close overlapping, re-insert
    /// remainders, insert new content, coalesce equal neighbours.
    fn update(&mut self, vt: Interval, val: i64) {
        self.clock += 1;
        let now = TimePoint(self.clock);
        self.mutate(vt, Some(val), now);
    }

    fn delete(&mut self, vt: Interval) {
        // A delete overlapping nothing is a no-op: the engine's plan is
        // empty and the transaction does not even consume a clock tick.
        let touches = self
            .versions
            .iter()
            .any(|(v_vt, v_tt, _)| v_tt.is_open_ended() && v_vt.overlaps(&vt));
        if !touches {
            return;
        }
        self.clock += 1;
        let now = TimePoint(self.clock);
        self.mutate(vt, None, now);
    }

    fn mutate(&mut self, vt: Interval, val: Option<i64>, now: TimePoint) {
        let mut to_add: Vec<(Interval, i64)> = Vec::new();
        for (v_vt, v_tt, v_val) in self.versions.iter_mut() {
            if v_tt.is_open_ended() && v_vt.overlaps(&vt) {
                *v_tt = Interval::new(v_tt.start(), now).expect("close after open");
                let (l, r) = v_vt.subtract(&vt);
                for rem in [l, r].into_iter().flatten() {
                    to_add.push((rem, *v_val));
                }
            }
        }
        if let Some(val) = val {
            to_add.push((vt, val));
        }
        // Coalesce adjacent equal-value additions against the whole
        // resulting current state.
        let mut current: Vec<(Interval, i64)> = self
            .versions
            .iter()
            .filter(|(_, tt, _)| tt.is_open_ended())
            .map(|(v, _, x)| (*v, *x))
            .collect();
        current.extend(to_add.iter().copied());
        current.sort_by_key(|(v, _)| v.start());
        // Find coalescable runs; rebuild the additions so that merged
        // versions replace their parts.
        let mut i = 0;
        while i + 1 < current.len() {
            if current[i].0.end() == current[i + 1].0.start() && current[i].1 == current[i + 1].1 {
                // Close both parts (if stored), add merged.
                let merged =
                    Interval::new(current[i].0.start(), current[i + 1].0.end()).expect("run");
                let (a, b) = (current[i], current[i + 1]);
                for part in [a, b] {
                    // Close a stored version if the part is stored; drop a
                    // pending addition otherwise.
                    if let Some(pos) = to_add.iter().position(|x| *x == part) {
                        to_add.remove(pos);
                    } else if let Some((_, tt, _)) = self
                        .versions
                        .iter_mut()
                        .find(|(v, tt, x)| tt.is_open_ended() && (*v, *x) == part)
                    {
                        *tt = Interval::new(tt.start(), now).expect("close");
                    }
                }
                to_add.push((merged, a.1));
                current.remove(i + 1);
                current[i] = (merged, a.1);
            } else {
                i += 1;
            }
        }
        for (vt, val) in to_add {
            self.versions.push((vt, Interval::from_start(now), val));
        }
    }
}

#[derive(Clone, Debug)]
enum Op {
    Update { start: u8, len: u8, val: i8 },
    Delete { start: u8, len: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u8..30, 1u8..15, any::<i8>()).prop_map(|(start, len, val)| Op::Update { start, len, val }),
        1 => (0u8..30, 1u8..15).prop_map(|(start, len)| Op::Delete { start, len }),
    ]
}

fn iv8(start: u8, len: u8) -> Interval {
    Interval::new(
        TimePoint(start as u64),
        TimePoint(start as u64 + len as u64),
    )
    .expect("len >= 1")
}

fn tuple(val: i64) -> Tuple {
    Tuple::new(vec![Value::Int(val), Value::from("pad")])
}

fn check(db: &Database, atom: AtomId, spec: &Spec, label: &str) {
    // Current state.
    let got: Vec<(Interval, i64)> = db
        .current_versions(atom)
        .unwrap()
        .into_iter()
        .map(|v| {
            let Value::Int(i) = v.tuple.get(0) else {
                panic!("int")
            };
            (v.vt, *i)
        })
        .collect();
    assert_eq!(got, spec.current(), "{label}: current state diverged");
    // Every past transaction time.
    for t in 0..=spec.clock + 1 {
        let tt = TimePoint(t);
        let got: Vec<(Interval, i64)> = db
            .versions_at(atom, tt)
            .unwrap()
            .into_iter()
            .map(|v| {
                let Value::Int(i) = v.tuple.get(0) else {
                    panic!("int")
                };
                (v.vt, *i)
            })
            .collect();
        assert_eq!(got, spec.at(tt), "{label}: slice at tt={t} diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, .. ProptestConfig::default() })]

    #[test]
    fn engine_matches_bitemporal_spec(
        ops in proptest::collection::vec(op_strategy(), 1..25),
        kind_sel in 0usize..3,
        seed in 0u64..u64::MAX,
    ) {
        let kind = [StoreKind::Chain, StoreKind::Delta, StoreKind::Split][kind_sel];
        let dir = std::env::temp_dir().join(format!(
            "tcom-prop-{}-{seed:x}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let db = Database::open(
            &dir,
            DbConfig::default().store_kind(kind).buffer_frames(128).checkpoint_interval(0),
        ).unwrap();
        let ty = db.define_atom_type(
            "t",
            vec![AttrDef::new("v", DataType::Int).indexed(), AttrDef::new("pad", DataType::Text)],
        ).unwrap();

        // Seed version covering everything so updates always apply.
        let mut spec = Spec::default();
        let mut txn = db.begin();
        let atom = txn.insert_atom(ty, Interval::all(), tuple(1000)).unwrap();
        txn.commit().unwrap();
        spec.clock += 1;
        spec.versions.push((Interval::all(), Interval::from_start(TimePoint(spec.clock)), 1000));

        for op in &ops {
            match op {
                Op::Update { start, len, val } => {
                    let vt = iv8(*start, *len);
                    let mut txn = db.begin();
                    txn.update(atom, vt, tuple(*val as i64)).unwrap();
                    txn.commit().unwrap();
                    spec.update(vt, *val as i64);
                }
                Op::Delete { start, len } => {
                    let vt = iv8(*start, *len);
                    let mut txn = db.begin();
                    txn.delete(atom, vt).unwrap();
                    txn.commit().unwrap();
                    spec.delete(vt);
                }
            }
            check(&db, atom, &spec, &format!("{kind} after {op:?}"));
        }

        // Crash and recover: the spec must still hold.
        db.crash();
        let db = Database::open(
            &dir,
            DbConfig::default().store_kind(kind).buffer_frames(128).checkpoint_interval(0),
        ).unwrap();
        check(&db, atom, &spec, &format!("{kind} after crash recovery"));

        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
