//! Offline stand-in for the `criterion` crate.
//!
//! Mirrors the API surface the workspace benches use (`benchmark_group`,
//! `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `iter_with_setup`, `criterion_group!` / `criterion_main!`) with a
//! deliberately small timing loop: a short warm-up, then `sample_size`
//! timed batches, reporting min/mean per iteration on stderr. No
//! statistics, plots, or baselines — just enough to run the benches and
//! eyeball relative cost.

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level handle passed to each bench function.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        eprintln!("group {name}");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut g = self.benchmark_group("_");
        g.bench_function(name, &mut f);
        self
    }
}

/// A named set of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup {
    /// Sets how many timed samples to take.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the total measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_benchmark_id();
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            min: Duration::MAX,
            mean: Duration::ZERO,
        };
        f(&mut b);
        eprintln!(
            "  {}/{id}: mean {:?}, min {:?} per iter",
            self.name, b.mean, b.min
        );
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (a no-op; exists for API parity).
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark (`BenchmarkId::new(name, param)`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Combines a function name and a parameter into one id.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{param}"))
    }
}

/// Conversion into a printable benchmark id.
pub trait IntoBenchmarkId {
    /// Produces the display string.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.0
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing driver handed to the closure of each benchmark.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    min: Duration,
    mean: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, and calibrate how many iterations fit in one sample.
        let warm_start = Instant::now();
        let mut iters_per_sample = 0u64;
        while warm_start.elapsed() < self.warm_up_time || iters_per_sample == 0 {
            black_box(routine());
            iters_per_sample += 1;
        }
        let per_sample =
            (self.measurement_time / self.sample_size as u32).max(Duration::from_micros(50));
        let warm_elapsed = warm_start.elapsed();
        let est_iter = warm_elapsed / iters_per_sample as u32;
        let batch = (per_sample.as_nanos() / est_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u32;

        let mut total = Duration::ZERO;
        let mut total_iters = 0u32;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            let per_iter = elapsed / batch;
            self.min = self.min.min(per_iter);
            total += elapsed;
            total_iters += batch;
        }
        self.mean = total / total_iters.max(1);
    }

    /// Times `routine` on fresh input from `setup`; only `routine` is timed.
    pub fn iter_with_setup<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let elapsed = start.elapsed();
            self.min = self.min.min(elapsed);
            total += elapsed;
        }
        self.mean = total / self.sample_size as u32;
    }
}

/// Declares a group of bench functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_loop_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        let mut count = 0u64;
        g.bench_function("count", |b| b.iter(|| count += 1));
        assert!(count > 0);
        g.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter_with_setup(|| vec![n; 8], |v| v.iter().sum::<u64>())
        });
        g.finish();
    }
}
