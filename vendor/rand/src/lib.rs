//! Offline stand-in for the `rand` crate.
//!
//! Implements the slice of the rand 0.8 API the workspace uses —
//! `StdRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`,
//! `SliceRandom::shuffle`, `rand::random` — on top of a deterministic
//! xoshiro256** generator. Identical seeds produce identical streams on
//! every platform, which the fault-injection harness relies on.

use std::ops::Range;

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The standard generator: xoshiro256** seeded via splitmix64.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        // splitmix64 expansion, the canonical way to seed xoshiro.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Types uniformly sampleable from a half-open range.
pub trait SampleUniform: Copy {
    /// Draws a value in `[lo, hi)`.
    fn sample_range(rng: &mut StdRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut StdRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is irrelevant for test/bench workloads.
                let r = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range(rng: &mut StdRng, lo: Self, hi: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

/// Types with a "standard" whole-domain distribution.
pub trait Standard: Sized {
    /// Draws an arbitrary value.
    fn standard(rng: &mut StdRng) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn standard(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard(rng: &mut StdRng) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The user-facing generator methods.
pub trait Rng {
    /// Access to the underlying generator.
    fn core(&mut self) -> &mut StdRng;

    /// Draws an arbitrary value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self.core())
    }

    /// Draws a value uniformly from `[range.start, range.end)`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self.core(), range.start, range.end)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::standard(self.core()) < p
    }
}

impl Rng for StdRng {
    fn core(&mut self) -> &mut StdRng {
        self
    }
}

/// Shuffling support for slices.
pub trait SliceRandom {
    /// The element type.
    type Item;
    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng>(&mut self, rng: &mut R);
    /// A uniformly random element, `None` when empty.
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

/// A process-global arbitrary value (seeded from the system clock, so it
/// differs between runs — only used for unique temp-file names).
pub fn random<T: Standard>() -> T {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ (d.as_secs() << 32))
        .unwrap_or(0x5EED);
    let uniq = &nanos as *const _ as u64;
    T::standard(&mut StdRng::seed_from_u64(nanos ^ uniq))
}

/// Generator re-exports, rand 0.8 style.
pub mod rngs {
    pub use super::StdRng;
}

/// The conventional glob-import module.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{random, Rng, SampleUniform, SeedableRng, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let neg = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&neg));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
