//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of the parking_lot API it actually uses:
//! [`Mutex`] / [`RwLock`] with non-poisoning guards. Everything delegates
//! to `std::sync`; a poisoned lock (panicking holder) is transparently
//! recovered, which matches parking_lot's no-poisoning semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock whose guards never observe poisoning.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// RAII guard of a [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

/// A condition variable usable with [`Mutex`], mirroring parking_lot's
/// `wait(&mut guard)` signature (std's `wait` consumes and returns the
/// guard; the shim moves it out and back in around the call).
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically releases the guarded mutex and blocks until notified;
    /// the lock is re-held when this returns. Spurious wakeups possible.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // SAFETY: the std guard is moved out for the duration of the wait
        // and the guard returned by `wait` (same mutex, re-locked) is
        // moved back in before returning, so `guard` is never observed
        // in the moved-from state and no guard is dropped twice.
        unsafe {
            let inner = std::ptr::read(&guard.0);
            let relocked = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
            std::ptr::write(&mut guard.0, relocked);
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock whose guards never observe poisoning.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// RAII shared guard of an [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// RAII exclusive guard of an [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }
}
