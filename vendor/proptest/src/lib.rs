//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the slice of the proptest 1.x API the workspace's property tests use:
//! the [`Strategy`] trait (generate-only — failing inputs are reported but
//! not shrunk), range / tuple / collection / string strategies, `any`,
//! `Just`, `prop_oneof!`, and the `proptest!` / `prop_assert!` macros.
//!
//! Generation is fully deterministic: the RNG for case `i` of test `t` is
//! seeded from `hash(t, i)`, so a failure report ("case 17 of foo") is
//! reproducible by rerunning the same binary. `PROPTEST_CASES` overrides
//! the per-test case count.

use rand::prelude::*;

pub mod strategy;
pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};

/// Per-block configuration, selected via `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for API compatibility with real proptest; this shim never
    /// shrinks, so the value is unused.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 32,
            max_shrink_iters: 0,
        }
    }
}

/// Machinery used by the `proptest!` macro expansion.
pub mod test_runner {
    use super::*;
    use std::hash::{Hash, Hasher};

    /// Effective case count: `PROPTEST_CASES` env override, else `cfg`.
    pub fn case_count(cfg: u32) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(cfg)
    }

    /// Deterministic RNG for one test case.
    pub fn rng_for(test_name: &str, case: u32) -> StdRng {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        test_name.hash(&mut h);
        case.hash(&mut h);
        StdRng::seed_from_u64(h.finish())
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::*;
    use std::ops::Range;

    /// Strategy producing a `Vec` of `elem`-generated values with a length
    /// drawn uniformly from `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// The conventional glob-import module.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Weighted-choice strategy combinator. Each arm is `weight => strategy`
/// (or just `strategy`, weight 1); all arms must generate the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::weighted($weight as u32, $strat)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof!($(1 => $strat),+)
    };
}

/// Property-test block: optional `#![proptest_config(..)]`, then `#[test]`
/// functions whose arguments are drawn from strategies with `arg in strat`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr) $( $(#[$attr:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )+ ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let cases = $crate::test_runner::case_count(config.cases);
                for case in 0..cases {
                    let mut rng = $crate::test_runner::rng_for(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    #[allow(unused_mut)]
                    let mut run = || -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        Ok(())
                    };
                    if let Err(msg) = run() {
                        panic!(
                            "proptest: case {case} of {} failed: {msg}",
                            stringify!($name)
                        );
                    }
                }
            }
        )+
    };
}

/// In-property assertion; failures report the case without aborting the
/// whole process state (the enclosing case returns an error).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// In-property equality assertion with `{:?}` reporting.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(*lhs == *rhs) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), lhs, rhs
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(*lhs == *rhs) {
            return ::std::result::Result::Err(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*), lhs, rhs
            ));
        }
    }};
}

/// In-property inequality assertion with `{:?}` reporting.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if *lhs == *rhs {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                lhs
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_in_bounds(x in 10u64..20, y in -5i64..5, f in -1.0f64..1.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn tuples_and_maps(pair in (0u8..4, 0u64..100).prop_map(|(a, b)| (a as u64) * 1000 + b)) {
            prop_assert!(pair < 4000, "pair = {}", pair);
        }

        #[test]
        fn oneof_respects_arms(v in prop_oneof![3 => 0u64..10, 1 => 100u64..110]) {
            prop_assert!(v < 10 || (100..110).contains(&v));
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn string_regexish(s in "[a-c0-1]{2,5}") {
            prop_assert!((2..=5).contains(&s.chars().count()), "s = {s:?}");
            prop_assert!(s.chars().all(|c| "abc01".contains(c)), "s = {s:?}");
        }

        #[test]
        fn just_is_constant(v in Just(7u32)) {
            prop_assert_eq!(v, 7);
        }
    }

    #[test]
    fn deterministic_generation() {
        let s = crate::collection::vec(any::<u64>(), 0..10);
        let a = s.generate(&mut crate::test_runner::rng_for("t", 3));
        let b = s.generate(&mut crate::test_runner::rng_for("t", 3));
        assert_eq!(a, b);
    }
}
