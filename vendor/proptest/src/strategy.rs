//! The [`Strategy`] trait and the built-in strategies.

use rand::prelude::*;
use std::marker::PhantomData;
use std::ops::Range;

/// A recipe for generating values of one type. Unlike real proptest there
/// is no shrinking: strategies only generate.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

// ---- ranges ----

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

// ---- tuples ----

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7)
}

// ---- any / Arbitrary ----

/// Types with a whole-domain default strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen::<$t>()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        // Finite, sign-balanced; property tests over floats want values
        // they can compare, not NaN/Inf bit patterns.
        (rng.gen::<f64>() - 0.5) * 2e9
    }
}

/// The default strategy for `T` (`any::<T>()`).
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---- weighted union (prop_oneof!) ----

/// Weighted choice among boxed strategies of one value type.
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u32,
}

impl<V> Union<V> {
    /// Builds a union; at least one arm, weights sum must be nonzero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Union<V> {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(
            total > 0,
            "prop_oneof! needs at least one positively weighted arm"
        );
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        let mut pick = rng.gen_range(0..self.total);
        for (w, s) in &self.arms {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum checked in Union::new")
    }
}

/// Boxes one `prop_oneof!` arm (helper that lets type inference unify the
/// arm value types).
pub fn weighted<S: Strategy + 'static>(w: u32, s: S) -> (u32, BoxedStrategy<S::Value>) {
    (w, Box::new(s))
}

// ---- string patterns ----

/// `&str` is a strategy: the pattern `[class]{lo,hi}` generates strings of
/// `lo..=hi` characters drawn from the class (ranges like `a-z` and literal
/// characters, Unicode included). Any other pattern generates itself
/// literally — enough for the identifiers the test-suite uses.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        match parse_class_pattern(self) {
            Some((chars, lo, hi)) if !chars.is_empty() => {
                let n = if lo >= hi {
                    lo
                } else {
                    rng.gen_range(lo..hi + 1)
                };
                (0..n)
                    .map(|_| chars[rng.gen_range(0..chars.len())])
                    .collect()
            }
            _ => (*self).to_string(),
        }
    }
}

/// Parses `[chars]{lo,hi}` / `[chars]{n}` / `[chars]` into the expanded
/// character set and repetition bounds.
fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (class[i] as u32, class[i + 2] as u32);
            for c in a..=b {
                chars.extend(char::from_u32(c));
            }
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    let tail = &rest[close + 1..];
    if tail.is_empty() {
        return Some((chars, 1, 1));
    }
    let counts = tail.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match counts.split_once(',') {
        Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    Some((chars, lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_pattern_parses() {
        let (chars, lo, hi) = parse_class_pattern("[a-c9 _ä]{0,24}").unwrap();
        assert_eq!(chars, vec!['a', 'b', 'c', '9', ' ', '_', 'ä']);
        assert_eq!((lo, hi), (0, 24));
        assert!(parse_class_pattern("plain").is_none());
    }
}
