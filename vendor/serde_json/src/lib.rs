//! Offline stand-in for the `serde_json` crate.
//!
//! Implements the slice the benchmark harness uses: [`Value`], the
//! [`json!`] macro for object/array literals, and [`to_string_pretty`].
//! There is no serde integration — values convert through the [`ToJson`]
//! trait instead of `Serialize`.

use std::fmt;

/// A JSON document. Objects preserve insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as f64; integers render without a fraction).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (insertion-ordered).
    Object(Vec<(String, Value)>),
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Object(entries) => entries
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

/// Conversion into [`Value`]; the stand-in's replacement for `Serialize`.
pub trait ToJson {
    /// Converts a borrowed value.
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

macro_rules! impl_to_json_num {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}

impl_to_json_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

/// Builds a [`Value`] from a JSON-shaped literal. Keys must be string
/// literals; values are arbitrary expressions converted via [`ToJson`].
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $(($key.to_string(), $crate::json!($value))),*
        ])
    };
    ([ $($value:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::json!($value)),* ])
    };
    ($other:expr) => { $crate::ToJson::to_json(&$other) };
}

/// Error type for serialization and parsing.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Parses a JSON document (the inverse of [`to_string_pretty`] /
/// [`to_string`]; accepts any standard JSON).
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid utf-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by the
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error(format!("bad escape '\\{}'", other as char)));
                        }
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| Error(format!("invalid number at byte {start}")))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }
}

/// Serializes with two-space indentation.
pub fn to_string_pretty(v: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(v, 0, &mut out);
    Ok(out)
}

/// Serializes compactly.
pub fn to_string(v: &Value) -> Result<String, Error> {
    Ok(format!("{v}"))
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(n: f64, out: &mut String) {
    if n.fract() == 0.0 && n.abs() < 9e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent + 1);
    let close_pad = "  ".repeat(indent);
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) if items.is_empty() => out.push_str("[]"),
        Value::Array(items) => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad);
                write_pretty(item, indent + 1, out);
                out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
            }
            out.push_str(&close_pad);
            out.push(']');
        }
        Value::Object(entries) if entries.is_empty() => out.push_str("{}"),
        Value::Object(entries) => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                out.push_str(&pad);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
                out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
            }
            out.push_str(&close_pad);
            out.push('}');
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => {
                let mut s = String::new();
                write_number(*n, &mut s);
                write!(f, "{s}")
            }
            Value::String(s) => {
                let mut out = String::new();
                write_escaped(s, &mut out);
                write!(f, "{out}")
            }
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Object(entries) => {
                write!(f, "{{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    let mut key = String::new();
                    write_escaped(k, &mut key);
                    write!(f, "{key}:{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_macro_and_pretty() {
        let rows: Vec<Vec<String>> = vec![vec!["a".into(), "b".into()]];
        let v = json!({ "id": "E1", "n": 3, "rows": rows, "tables": Vec::<Value>::new() });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"id\": \"E1\""));
        assert!(s.contains("\"n\": 3"));
        assert_eq!(to_string(&json!(null)).unwrap(), "null");
    }

    #[test]
    fn escaping() {
        let v = json!({ "k": "a\"b\nc" });
        assert_eq!(format!("{v}"), "{\"k\":\"a\\\"b\\nc\"}");
    }

    #[test]
    fn conditional_value_expressions() {
        let quick = true;
        let v = json!({ "scale": if quick { "quick" } else { "full" } });
        assert_eq!(format!("{v}"), "{\"scale\":\"quick\"}");
    }

    #[test]
    fn parse_roundtrip() {
        let rows: Vec<Vec<String>> = vec![vec!["1.5".into(), "a\"b\n".into()]];
        let v = json!({
            "scale": "full",
            "neg": -2.5,
            "big": 123456789,
            "flags": vec![Value::Bool(true), Value::Bool(false), Value::Null],
            "rows": rows,
            "empty_obj": Value::Object(vec![]),
            "empty_arr": Vec::<Value>::new(),
        });
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str(&pretty).unwrap(), v);
        let compact = to_string(&v).unwrap();
        assert_eq!(from_str(&compact).unwrap(), v);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str("").is_err());
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("\"open").is_err());
        assert!(from_str("{}extra").is_err());
        assert!(from_str("nul").is_err());
    }

    #[test]
    fn parse_escapes_and_numbers() {
        let v = from_str(r#"{"k":"a\"b\nA","n":-1.5e2}"#).unwrap();
        assert_eq!(v["k"], Value::String("a\"b\nA".into()));
        assert_eq!(v["n"], Value::Number(-150.0));
    }
}
