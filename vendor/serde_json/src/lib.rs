//! Offline stand-in for the `serde_json` crate.
//!
//! Implements the slice the benchmark harness uses: [`Value`], the
//! [`json!`] macro for object/array literals, and [`to_string_pretty`].
//! There is no serde integration — values convert through the [`ToJson`]
//! trait instead of `Serialize`.

use std::fmt;

/// A JSON document. Objects preserve insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as f64; integers render without a fraction).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (insertion-ordered).
    Object(Vec<(String, Value)>),
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Object(entries) => entries
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

/// Conversion into [`Value`]; the stand-in's replacement for `Serialize`.
pub trait ToJson {
    /// Converts a borrowed value.
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

macro_rules! impl_to_json_num {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}

impl_to_json_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

/// Builds a [`Value`] from a JSON-shaped literal. Keys must be string
/// literals; values are arbitrary expressions converted via [`ToJson`].
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $(($key.to_string(), $crate::json!($value))),*
        ])
    };
    ([ $($value:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::json!($value)),* ])
    };
    ($other:expr) => { $crate::ToJson::to_json(&$other) };
}

/// Error type for serialization (the stand-in never fails).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json serialization error")
    }
}

impl std::error::Error for Error {}

/// Serializes with two-space indentation.
pub fn to_string_pretty(v: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(v, 0, &mut out);
    Ok(out)
}

/// Serializes compactly.
pub fn to_string(v: &Value) -> Result<String, Error> {
    Ok(format!("{v}"))
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(n: f64, out: &mut String) {
    if n.fract() == 0.0 && n.abs() < 9e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent + 1);
    let close_pad = "  ".repeat(indent);
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) if items.is_empty() => out.push_str("[]"),
        Value::Array(items) => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad);
                write_pretty(item, indent + 1, out);
                out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
            }
            out.push_str(&close_pad);
            out.push(']');
        }
        Value::Object(entries) if entries.is_empty() => out.push_str("{}"),
        Value::Object(entries) => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                out.push_str(&pad);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
                out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
            }
            out.push_str(&close_pad);
            out.push('}');
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => {
                let mut s = String::new();
                write_number(*n, &mut s);
                write!(f, "{s}")
            }
            Value::String(s) => {
                let mut out = String::new();
                write_escaped(s, &mut out);
                write!(f, "{out}")
            }
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Object(entries) => {
                write!(f, "{{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    let mut key = String::new();
                    write_escaped(k, &mut key);
                    write!(f, "{key}:{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_macro_and_pretty() {
        let rows: Vec<Vec<String>> = vec![vec!["a".into(), "b".into()]];
        let v = json!({ "id": "E1", "n": 3, "rows": rows, "tables": Vec::<Value>::new() });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"id\": \"E1\""));
        assert!(s.contains("\"n\": 3"));
        assert_eq!(to_string(&json!(null)).unwrap(), "null");
    }

    #[test]
    fn escaping() {
        let v = json!({ "k": "a\"b\nc" });
        assert_eq!(format!("{v}"), "{\"k\":\"a\\\"b\\nc\"}");
    }

    #[test]
    fn conditional_value_expressions() {
        let quick = true;
        let v = json!({ "scale": if quick { "quick" } else { "full" } });
        assert_eq!(format!("{v}"), "{\"scale\":\"quick\"}");
    }
}
